"""A dynamic R-tree (Guttman, SIGMOD 1984) with quadratic split.

Supports insertion, deletion and window (range) search over
:class:`~repro.rtree.geometry.Rect` boxes.  Every search reports the number
of nodes visited — the unit the COLARM cost model prices (the paper's
"expected disk accesses" [21]) — and entry counts are aggregated bottom-up
as subtree maxima so the supported R-tree filter of Section 4.3 can prune
whole subtrees against a support threshold.

Bulk-loaded (packed) trees are built by :mod:`repro.rtree.packing` and share
this class's search machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import IndexError_
from repro.rtree.geometry import Rect
from repro.rtree.node import Entry, Node

__all__ = ["RTree", "SearchResult", "LevelStat"]

DEFAULT_MAX_ENTRIES = 8


@dataclass
class SearchResult:
    """Entries matched by a window query plus the node accesses it cost."""

    entries: list[Entry]
    nodes_visited: int


@dataclass(frozen=True)
class LevelStat:
    """Aggregate statistics of one tree level, consumed by the cost model."""

    level: int
    n_nodes: int
    avg_extents: tuple[float, ...]  # average MBR extent per dimension, in cells


class RTree:
    """Dynamic n-dimensional R-tree over integer cell boxes."""

    def __init__(
        self,
        n_dims: int,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
    ):
        if n_dims < 1:
            raise IndexError_("n_dims must be >= 1")
        if max_entries < 2:
            raise IndexError_("max_entries must be >= 2")
        self.n_dims = n_dims
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(
            1, max_entries * 2 // 5
        )
        if not 1 <= self.min_entries <= max_entries // 2:
            raise IndexError_(
                f"min_entries must be in [1, {max_entries // 2}], "
                f"got {self.min_entries}"
            )
        self._root = Node(level=0)
        self._size = 0
        #: Monotone counter of structural mutations (inserts/deletes).
        #: Compiled flat snapshots (:mod:`repro.rtree.flat`) record the
        #: value at compile time; consumers compare counters to detect a
        #: stale snapshot and fall back to this pointer tree.  Packed
        #: trees come out of :mod:`repro.rtree.packing` at 0.
        self.mutations = 0

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        return self._root.level + 1

    @property
    def root(self) -> Node:
        return self._root

    def all_entries(self) -> list[Entry]:
        """Every leaf entry, in depth-first order."""
        out: list[Entry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.extend(node.entries)
            else:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]
        return out

    def level_stats(self) -> list[LevelStat]:
        """Per-level node counts and average MBR extents (cost-model input)."""
        per_level: dict[int, list[Node]] = {}
        stack = [self._root]
        while stack:
            node = stack.pop()
            per_level.setdefault(node.level, []).append(node)
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]
        stats = []
        for level in sorted(per_level):
            nodes = [n for n in per_level[level] if n.entries]
            if not nodes:
                continue
            sums = [0.0] * self.n_dims
            for node in nodes:
                for d, extent in enumerate(node.mbr().extents()):
                    sums[d] += extent
            stats.append(
                LevelStat(
                    level=level,
                    n_nodes=len(nodes),
                    avg_extents=tuple(s / len(nodes) for s in sums),
                )
            )
        return stats

    # -- search ------------------------------------------------------------------

    def search(self, query: Rect, min_count: int | None = None) -> SearchResult:
        """All leaf entries whose box intersects ``query``.

        With ``min_count`` set, subtrees whose aggregated ``count`` falls
        below it are pruned — the SUPPORTED-SEARCH filter: an entry's count
        upper-bounds the local support of everything beneath it (Lemma 4.4),
        so skipped subtrees cannot contain qualifying itemsets.
        """
        if query.n_dims != self.n_dims:
            raise IndexError_(
                f"query has {query.n_dims} dims, tree has {self.n_dims}"
            )
        hits: list[Entry] = []
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            for entry in node.entries:
                if min_count is not None and entry.count < min_count:
                    continue
                if not entry.rect.intersects(query):
                    continue
                if node.is_leaf:
                    hits.append(entry)
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]
        return SearchResult(hits, visited)

    # -- insertion ------------------------------------------------------------------

    def insert(self, rect: Rect, payload: Any, count: int = 0) -> None:
        """Insert one payload box (Guttman ChooseLeaf + quadratic split)."""
        if rect.n_dims != self.n_dims:
            raise IndexError_(f"rect has {rect.n_dims} dims, tree has {self.n_dims}")
        entry = Entry(rect=rect, payload=payload, count=count)
        split = self._insert_entry(self._root, entry, target_level=0)
        if split is not None:
            self._grow_root(split)
        self._size += 1
        self.mutations += 1

    def _insert_entry(self, node: Node, entry: Entry, target_level: int
                      ) -> Node | None:
        """Recursive insert; returns the sibling node if ``node`` split."""
        if node.level == target_level:
            node.entries.append(entry)
        else:
            slot = self._choose_subtree(node, entry.rect)
            split_child = self._insert_entry(slot.child, entry, target_level)
            slot.rect = slot.child.mbr()
            slot.count = slot.child.max_count()
            if split_child is not None:
                node.entries.append(
                    Entry(
                        rect=split_child.mbr(),
                        child=split_child,
                        count=split_child.max_count(),
                    )
                )
        if len(node.entries) > self.max_entries:
            return self._split(node)
        return None

    def _choose_subtree(self, node: Node, rect: Rect) -> Entry:
        """Least-enlargement child, ties broken by smaller area."""
        return min(
            node.entries,
            key=lambda e: (e.rect.enlargement(rect), e.rect.area()),
        )

    def _grow_root(self, sibling: Node) -> None:
        old_root = self._root
        self._root = Node(level=old_root.level + 1)
        for child in (old_root, sibling):
            self._root.entries.append(
                Entry(rect=child.mbr(), child=child, count=child.max_count())
            )

    def _split(self, node: Node) -> Node:
        """Guttman's quadratic split; ``node`` keeps one group, returns the other."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a, rect_b = group_a[0].rect, group_b[0].rect
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        while rest:
            # If one group must take all remaining entries to reach the
            # minimum, assign them wholesale.
            if len(group_a) + len(rest) == self.min_entries:
                group_a.extend(rest)
                rest = []
                break
            if len(group_b) + len(rest) == self.min_entries:
                group_b.extend(rest)
                rest = []
                break
            idx, prefer_a = self._pick_next(rest, rect_a, rect_b)
            entry = rest.pop(idx)
            if prefer_a:
                group_a.append(entry)
                rect_a = rect_a.union(entry.rect)
            else:
                group_b.append(entry)
                rect_b = rect_b.union(entry.rect)

        node.entries = group_a
        sibling = Node(level=node.level, entries=group_b)
        return sibling

    @staticmethod
    def _pick_seeds(entries: list[Entry]) -> tuple[int, int]:
        """The pair wasting the most area if grouped together."""
        best, best_waste = (0, 1), -1
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                union = entries[i].rect.union(entries[j].rect)
                waste = union.area() - entries[i].rect.area() - entries[j].rect.area()
                if waste > best_waste:
                    best, best_waste = (i, j), waste
        return best

    @staticmethod
    def _pick_next(rest: list[Entry], rect_a: Rect, rect_b: Rect
                   ) -> tuple[int, bool]:
        """Entry with max preference difference, and which group it prefers."""
        best_idx, best_diff, prefer_a = 0, -1, True
        for i, entry in enumerate(rest):
            da = rect_a.enlargement(entry.rect)
            db = rect_b.enlargement(entry.rect)
            diff = abs(da - db)
            if diff > best_diff:
                best_idx, best_diff, prefer_a = i, diff, da < db
        return best_idx, prefer_a

    # -- deletion ------------------------------------------------------------------

    def delete(self, rect: Rect, payload: Any) -> bool:
        """Remove one leaf entry matching ``(rect, payload)``.

        Returns ``False`` if no such entry exists.  Underfull nodes along
        the path are dissolved and their entries reinserted (Guttman's
        CondenseTree).
        """
        orphans: list[Entry] = []
        removed = self._delete_rec(self._root, rect, payload, orphans)
        if not removed:
            return False
        self._size -= 1
        self.mutations += 1
        # Shrink a root that lost all but one child.
        while not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0].child  # type: ignore[assignment]
        if not self._root.is_leaf and not self._root.entries:
            self._root = Node(level=0)
        for entry in orphans:
            split = self._insert_entry(self._root, entry, target_level=0)
            if split is not None:
                self._grow_root(split)
        return True

    def _delete_rec(
        self,
        node: Node,
        rect: Rect,
        payload: Any,
        orphans: list[Entry],
    ) -> bool:
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if entry.rect == rect and entry.payload == payload:
                    node.entries.pop(i)
                    return True
            return False
        for i, slot in enumerate(node.entries):
            if not slot.rect.intersects(rect):
                continue
            if self._delete_rec(slot.child, rect, payload, orphans):
                child = slot.child
                if len(child.entries) < self.min_entries:
                    node.entries.pop(i)
                    orphans.extend(self._leaf_entries_of(child))
                elif child.entries:
                    slot.rect = child.mbr()
                    slot.count = child.max_count()
                return True
        return False

    @staticmethod
    def _leaf_entries_of(node: Node) -> list[Entry]:
        """All leaf entries beneath a subtree (orphan flattening)."""
        out: list[Entry] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                out.extend(current.entries)
            else:
                stack.extend(e.child for e in current.entries)  # type: ignore[misc]
        return out
