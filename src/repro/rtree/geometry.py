"""n-dimensional rectangles over discrete cell grids.

COLARM's multidimensional space is the grid of discretized cells (Section
2.1): dimension ``i`` has integer coordinates ``0 .. cardinality_i - 1``.  A
:class:`Rect` is a closed integer box ``[lo_i, hi_i]`` per dimension — an
itemset's bounding box spans a single cell on the attributes it fixes and
the whole domain elsewhere.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import DataError

__all__ = ["Rect", "mbr_of"]


@dataclass(frozen=True)
class Rect:
    """A closed integer box: ``lows[i] <= x_i <= highs[i]`` per dimension."""

    lows: tuple[int, ...]
    highs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise DataError("lows and highs must have the same dimensionality")
        if not self.lows:
            raise DataError("rectangles need at least one dimension")
        if any(lo > hi for lo, hi in zip(self.lows, self.highs)):
            raise DataError(f"inverted interval in {self.lows} .. {self.highs}")

    # -- construction ------------------------------------------------------

    @staticmethod
    def point(coords: Sequence[int]) -> "Rect":
        """The degenerate box covering a single cell."""
        coords = tuple(coords)
        return Rect(coords, coords)

    @staticmethod
    def full_domain(cardinalities: Sequence[int]) -> "Rect":
        """The box covering the entire grid."""
        return Rect(
            tuple(0 for _ in cardinalities),
            tuple(c - 1 for c in cardinalities),
        )

    # -- shape ---------------------------------------------------------------

    @property
    def n_dims(self) -> int:
        return len(self.lows)

    def extent(self, dim: int) -> int:
        """Number of cells the box spans in one dimension."""
        return self.highs[dim] - self.lows[dim] + 1

    def extents(self) -> tuple[int, ...]:
        return tuple(h - l + 1 for l, h in zip(self.lows, self.highs))

    def area(self) -> int:
        """Number of grid cells covered (product of extents)."""
        area = 1
        for e in self.extents():
            area *= e
        return area

    def margin(self) -> int:
        """Sum of extents (the R*-tree 'perimeter' surrogate)."""
        return sum(self.extents())

    def center(self) -> tuple[float, ...]:
        return tuple((l + h) / 2.0 for l, h in zip(self.lows, self.highs))

    # -- relations -------------------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        self._check_dims(other)
        return all(
            sl <= oh and ol <= sh
            for sl, sh, ol, oh in zip(self.lows, self.highs, other.lows, other.highs)
        )

    def contains(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        self._check_dims(other)
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lows, self.highs, other.lows, other.highs)
        )

    def contains_point(self, coords: Sequence[int]) -> bool:
        return all(l <= c <= h for l, h, c in zip(self.lows, self.highs, coords))

    # -- combination -------------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        """Minimum bounding rectangle of the two boxes."""
        self._check_dims(other)
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lows, other.lows)),
            tuple(max(a, b) for a, b in zip(self.highs, other.highs)),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping box, or ``None`` if disjoint."""
        self._check_dims(other)
        lows = tuple(max(a, b) for a, b in zip(self.lows, other.lows))
        highs = tuple(min(a, b) for a, b in zip(self.highs, other.highs))
        if any(lo > hi for lo, hi in zip(lows, highs)):
            return None
        return Rect(lows, highs)

    def enlargement(self, other: "Rect") -> int:
        """Area growth needed to absorb ``other`` (Guttman's insert metric)."""
        return self.union(other).area() - self.area()

    def _check_dims(self, other: "Rect") -> None:
        if self.n_dims != other.n_dims:
            raise DataError(
                f"dimensionality mismatch: {self.n_dims} vs {other.n_dims}"
            )


def mbr_of(rects: Iterable[Rect]) -> Rect:
    """Minimum bounding rectangle of a non-empty collection."""
    it = iter(rects)
    try:
        acc = next(it)
    except StopIteration:
        raise DataError("mbr_of needs at least one rectangle") from None
    for rect in it:
        acc = acc.union(rect)
    return acc
