"""R-tree nodes and entries.

A node at ``level == 0`` is a leaf whose entries carry payloads; higher
levels carry child nodes.  Every entry also stores a ``count`` — unused by
the plain R-tree but aggregated bottom-up (as ``max_count``) by the
supported R-tree of Section 4.3, so one node type serves both structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import IndexError_
from repro.rtree.geometry import Rect, mbr_of

__all__ = ["Entry", "Node"]


@dataclass
class Entry:
    """One slot of a node: a box plus either a payload (leaf) or a child."""

    rect: Rect
    payload: Any = None
    child: Optional["Node"] = None
    count: int = 0

    def __post_init__(self) -> None:
        if (self.payload is None) == (self.child is None):
            raise IndexError_("entry must carry exactly one of payload/child")


@dataclass
class Node:
    """A node of the R-tree; ``level == 0`` marks leaves."""

    level: int
    entries: list[Entry] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> Rect:
        if not self.entries:
            raise IndexError_("empty node has no MBR")
        return mbr_of(e.rect for e in self.entries)

    def max_count(self) -> int:
        """Largest entry count in this node (0 when empty)."""
        return max((e.count for e in self.entries), default=0)
