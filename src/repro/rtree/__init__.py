"""R-tree substrate: geometry, dynamic/packed trees, supported filter, costs."""

from repro.rtree.costmodel import expected_leaf_matches, expected_node_accesses
from repro.rtree.flat import FlatLevel, FlatRTree
from repro.rtree.geometry import Rect, mbr_of
from repro.rtree.hilbert import bits_needed, hilbert_index
from repro.rtree.node import Entry, Node
from repro.rtree.packing import pack_hilbert, pack_str
from repro.rtree.rstar import RStarTree
from repro.rtree.rtree import LevelStat, RTree, SearchResult
from repro.rtree.supported import SupportedRTree

__all__ = [
    "Rect",
    "mbr_of",
    "hilbert_index",
    "bits_needed",
    "Entry",
    "Node",
    "FlatLevel",
    "FlatRTree",
    "RTree",
    "RStarTree",
    "SearchResult",
    "LevelStat",
    "pack_hilbert",
    "pack_str",
    "SupportedRTree",
    "expected_node_accesses",
    "expected_leaf_matches",
]
