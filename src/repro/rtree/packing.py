"""Bulk loading (packing) of R-trees.

COLARM builds its R-tree once, offline, over the full set of MIP bounding
boxes, so it uses the packing scheme of Kamel & Faloutsos [11]: sort the
rectangles along a Hilbert curve through their centers, fill leaves to
capacity in that order, and repeat level by level — achieving ~100% space
utilization.  A Sort-Tile-Recursive (STR, Leutenegger et al.) variant is
provided as an alternative; both produce trees that share
:class:`~repro.rtree.rtree.RTree`'s search machinery.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.errors import IndexError_
from repro.rtree.geometry import Rect
from repro.rtree.hilbert import bits_needed, hilbert_index
from repro.rtree.node import Entry, Node
from repro.rtree.rtree import DEFAULT_MAX_ENTRIES, RTree

__all__ = ["pack_hilbert", "pack_str"]

#: One rectangle to index: (box, payload, count).
PackInput = tuple[Rect, Any, int]


def pack_hilbert(
    n_dims: int,
    items: Sequence[PackInput],
    max_entries: int = DEFAULT_MAX_ENTRIES,
) -> RTree:
    """Bulk-load a fully packed R-tree via Hilbert-order tiling."""
    _check_items(n_dims, items)
    max_coord = max(
        max(rect.highs) for rect, _, _ in items
    ) if items else 0
    bits = bits_needed(max_coord * 2 + 1)  # centers are doubled to stay integral

    def key(item: PackInput) -> int:
        rect = item[0]
        doubled_center = tuple(lo + hi for lo, hi in zip(rect.lows, rect.highs))
        return hilbert_index(doubled_center, bits)

    ordered = sorted(items, key=key)
    return _pack_ordered(n_dims, ordered, max_entries)


def pack_str(
    n_dims: int,
    items: Sequence[PackInput],
    max_entries: int = DEFAULT_MAX_ENTRIES,
) -> RTree:
    """Bulk-load via Sort-Tile-Recursive: tile centers dimension by dimension."""
    _check_items(n_dims, items)
    ordered = _str_order(list(items), dim=0, n_dims=n_dims, capacity=max_entries)
    return _pack_ordered(n_dims, ordered, max_entries)


def _str_order(
    items: list[PackInput], dim: int, n_dims: int, capacity: int
) -> list[PackInput]:
    """Recursive STR tiling order of the items' centers."""
    if dim >= n_dims - 1 or len(items) <= capacity:
        return sorted(items, key=lambda it: it[0].center()[dim:])
    items = sorted(items, key=lambda it: it[0].center()[dim])
    n_leaves = max(1, -(-len(items) // capacity))
    remaining_dims = n_dims - dim
    n_slabs = max(1, round(n_leaves ** (1.0 / remaining_dims)))
    slab_size = max(1, -(-len(items) // n_slabs))
    ordered: list[PackInput] = []
    for start in range(0, len(items), slab_size):
        slab = items[start:start + slab_size]
        ordered.extend(_str_order(slab, dim + 1, n_dims, capacity))
    return ordered


def _pack_ordered(
    n_dims: int, ordered: Sequence[PackInput], max_entries: int
) -> RTree:
    """Fill leaves to capacity in the given order, then pack upward."""
    tree = RTree(n_dims=n_dims, max_entries=max_entries)
    if not ordered:
        return tree

    nodes = []
    for start in range(0, len(ordered), max_entries):
        leaf = Node(level=0)
        for rect, payload, count in ordered[start:start + max_entries]:
            leaf.entries.append(Entry(rect=rect, payload=payload, count=count))
        nodes.append(leaf)

    level = 0
    while len(nodes) > 1:
        level += 1
        parents = []
        for start in range(0, len(nodes), max_entries):
            parent = Node(level=level)
            for child in nodes[start:start + max_entries]:
                parent.entries.append(
                    Entry(rect=child.mbr(), child=child, count=child.max_count())
                )
            parents.append(parent)
        nodes = parents

    tree._root = nodes[0]
    tree._size = len(ordered)
    # A packed tree is born unmutated: flat snapshots compiled from it
    # (repro.rtree.flat) stay current until the first insert/delete.
    tree.mutations = 0
    return tree


def _check_items(n_dims: int, items: Sequence[PackInput]) -> None:
    for rect, _, _ in items:
        if rect.n_dims != n_dims:
            raise IndexError_(
                f"rect has {rect.n_dims} dims, expected {n_dims}"
            )
