"""The Supported R-tree (COLARM Section 4.3, Figure 6).

A packed R-tree over MIP bounding boxes whose leaf entries carry the global
support count ``|D^G_I|`` of their itemset and whose internal entries carry
the maximum count of their subtree.  Lemma 4.4 — ``|D^Q_I| <= |D^G_I|`` —
makes that count an upper bound on any local support, so a window search
carrying ``min_count = ceil(minsupp * |D^Q|)`` prunes entries *and whole
subtrees* that cannot qualify, without any record-level work.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.rtree.flat import FlatHits, FlatRTree
from repro.rtree.geometry import Rect
from repro.rtree.packing import pack_hilbert, pack_str
from repro.rtree.rtree import DEFAULT_MAX_ENTRIES, LevelStat, RTree, SearchResult

__all__ = ["SupportedRTree"]


@dataclass
class SupportedRTree:
    """Support-annotated packed R-tree with a plain and a filtered search.

    Both search entry points transparently use the compiled flat SoA form
    (:class:`~repro.rtree.flat.FlatRTree`) when one is attached *and still
    current* (same mutation counter as the pointer tree); otherwise they
    fall back to the pointer traversal.  The two paths return the same hit
    set and byte-identical ``nodes_visited``, so the cost model stays
    calibrated regardless of which one answered.
    """

    tree: RTree
    counts: np.ndarray  # sorted global support counts of all indexed boxes
    flat: FlatRTree | None = None  # compiled SoA snapshot (may be stale)

    @classmethod
    def build(
        cls,
        n_dims: int,
        items: Sequence[tuple[Rect, Any, int]],
        max_entries: int = DEFAULT_MAX_ENTRIES,
        method: str = "hilbert",
        compile_flat: bool = True,
    ) -> "SupportedRTree":
        """Pack ``(box, payload, global_count)`` triples into a supported R-tree.

        ``method`` selects the bulk-loading order: ``"hilbert"`` (Kamel &
        Faloutsos, the paper's choice) or ``"str"``.  With ``compile_flat``
        (the default) the flat SoA traversal form is compiled right after
        packing; pass ``False`` when the caller will attach a persisted
        compile instead (:mod:`repro.core.persistence`).
        """
        packer = pack_hilbert if method == "hilbert" else pack_str
        tree = packer(n_dims, items, max_entries=max_entries)
        counts = np.sort(np.asarray([count for _, _, count in items], dtype=np.int64))
        built = cls(tree=tree, counts=counts)
        if compile_flat:
            built.compile_flat()
        return built

    # -- flat SoA snapshot management --------------------------------------

    def compile_flat(self) -> FlatRTree:
        """(Re)compile the flat traversal form from the pointer tree."""
        self.flat = FlatRTree.from_rtree(self.tree)
        return self.flat

    def invalidate_flat(self) -> None:
        """Drop the compiled form (searches fall back to the pointer tree)."""
        self.flat = None

    def flat_is_current(self) -> bool:
        """Whether the compiled form matches the pointer tree's state."""
        return (
            self.flat is not None
            and self.flat.source_mutations == self.tree.mutations
        )

    def __len__(self) -> int:
        return len(self.tree)

    @property
    def height(self) -> int:
        return self.tree.height

    def level_stats(self) -> list[LevelStat]:
        """Per-level node counts and average MBR extents (cost-model input).

        When a *current* compiled form is attached the stats come from one
        vectorized ``reduceat`` pass per level over the flat CSR arrays
        (node MBR = segment min/max of its entries' boxes) instead of the
        Python pointer walk; both paths return identical values — nodes
        with no entries are skipped exactly as the pointer walk skips them.
        """
        if self.flat_is_current():
            return self._level_stats_flat()
        return self.tree.level_stats()

    def _level_stats_flat(self) -> list[LevelStat]:
        assert self.flat is not None
        stats: list[LevelStat] = []
        height = self.flat.height
        # Flat levels are root-first; pointer levels number leaf=0 upward.
        for depth, lv in enumerate(self.flat.levels):
            offsets = np.asarray(lv.node_offsets)
            lens = np.diff(offsets)
            nonempty = lens > 0
            n_nodes = int(nonempty.sum())
            if n_nodes == 0:
                continue
            starts = offsets[:-1][nonempty]
            # Segment min/max over each node's entry slice: the node MBR.
            node_lows = np.minimum.reduceat(lv.lows, starts, axis=0)
            node_highs = np.maximum.reduceat(lv.highs, starts, axis=0)
            # reduceat folds each start up to the next *start* — with the
            # empty segments dropped above, that is exactly each surviving
            # node's slice (trailing entries of removed empty nodes cannot
            # exist: an empty node contributes no entries).
            extents = node_highs - node_lows + 1
            stats.append(
                LevelStat(
                    level=height - 1 - depth,
                    n_nodes=n_nodes,
                    avg_extents=tuple(
                        float(x) for x in extents.mean(axis=0, dtype=np.float64)
                    ),
                )
            )
        stats.sort(key=lambda s: s.level)
        return stats

    def search(self, query: Rect) -> SearchResult:
        """Plain window search — the basic SEARCH operator."""
        if self.flat_is_current():
            return self.flat.search(query)
        return self.tree.search(query)

    def search_supported(self, query: Rect, min_count: int) -> SearchResult:
        """Window search with the support filter — SUPPORTED-SEARCH.

        Only entries with global count >= ``min_count`` are returned;
        subtrees whose maximum count falls short are never descended.
        """
        if self.flat_is_current():
            return self.flat.search(query, min_count=min_count)
        return self.tree.search(query, min_count=min_count)

    def search_arrays(
        self, query: Rect, min_count: int | None = None
    ) -> FlatHits | None:
        """Array-native window search, or ``None`` when it cannot be served.

        Returns :class:`~repro.rtree.flat.FlatHits` (leaf slots, payload
        rows, global counts) straight from the compiled arrays.  A stale or
        missing compile returns ``None`` — never arrays from a diverged
        snapshot — and the caller falls back to the per-entry search; the
        staleness guard is property-tested on the payload path.
        """
        if not self.flat_is_current():
            return None
        assert self.flat is not None
        return self.flat.search_hits(query, min_count=min_count)

    def fraction_with_count_at_least(self, min_count: int) -> float:
        """Fraction of indexed boxes whose global count reaches ``min_count``.

        A precomputed index statistic (sorted count array + binary search)
        used by the cost model to estimate SUPPORTED-SEARCH selectivity.
        """
        if len(self.counts) == 0:
            return 0.0
        idx = int(np.searchsorted(self.counts, min_count, side="left"))
        return (len(self.counts) - idx) / len(self.counts)
