"""Flat structure-of-arrays R-tree: contiguous layout + vectorized traversal.

The pointer :class:`~repro.rtree.rtree.RTree` answers a window query by
descending a Python object graph one :class:`~repro.rtree.node.Entry` at a
time — after the PR-1 kernel layer this pointer-chasing became the dominant
online cost of the MIP-side plans (~55% of chess query time; ROADMAP).
This module compiles any *built* tree (dynamic or Hilbert/STR-packed) into
structure-of-arrays form and replaces the per-entry loop with **vectorized
frontier expansion**:

* per level, the entries of all nodes live in contiguous numpy arrays —
  ``lows[n_entries, n_dims]``, ``highs``, ``counts`` — grouped by owning
  node through a CSR-style ``node_offsets`` array;
* a window query keeps a *frontier* of node indices per level; one batched
  interval-overlap test (``all(q_lo <= highs) & all(lows <= q_hi)``) plus
  one batched ``counts >= min_count`` mask replaces the Python loop over
  the frontier's entries;
* the child of entry ``j`` at an internal level is node ``j`` of the level
  below (the **child-order invariant**: the compiler enumerates each
  level's nodes in parent-entry order), so no explicit child-pointer array
  is needed and the matched-entry index vector *is* the next frontier.

``nodes_visited`` is exact, not estimated: the pointer search pops the
root plus every internal entry that passes both filters, so the flat
traversal returns ``1 + sum(matched internal entries per level)`` — byte-
identical to :meth:`RTree.search` on every query (asserted by the property
suite), keeping the R-tree cost model (:mod:`repro.rtree.costmodel`) and
its calibration pricing the same unit.

Since the array-native pipeline (PR 5) the leaf level is *payload-first*:
the compiled tree stores a payload table plus cached ``payload_rows`` /
global-count arrays, and :meth:`search_hits` returns a :class:`FlatHits`
bundle of contiguous arrays (leaf slots, payload rows, global counts)
instead of rebuilding :class:`Entry` objects per query.  The per-entry
:meth:`search` contract is kept for the pointer-parity property tests and
builds its ``Entry`` list lazily from the same slot vector.

The compiled form is a snapshot: it records the source tree's mutation
counter, and :class:`~repro.rtree.supported.SupportedRTree` falls back to
the pointer tree whenever the counters diverge (inserts/deletes), so a
stale compile can never serve wrong hits.  The arrays round-trip through
:mod:`repro.core.persistence` so reloaded indexes skip recompilation.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import IndexError_
from repro.rtree.geometry import Rect
from repro.rtree.node import Entry, Node
from repro.rtree.rtree import RTree, SearchResult

__all__ = ["FlatHits", "FlatLevel", "FlatRTree"]


@dataclass(frozen=True)
class FlatHits:
    """Array-native result of a flat window search.

    The payload-array counterpart of :class:`~repro.rtree.rtree.SearchResult`:
    ``slots`` are leaf-table indices (leaf-array order), ``rows`` the
    payloads' index rows (``payload.row``; ``-1`` for payloads without one)
    and ``counts`` the entries' global support counts.  ``nodes_visited``
    is byte-identical to the pointer traversal's, so the R-tree cost model
    prices both paths in the same unit.
    """

    slots: np.ndarray          # (k,) intp — leaf-table slot per hit
    rows: np.ndarray           # (k,) int64 — payload rows (MIP ids)
    counts: np.ndarray         # (k,) int64 — global support counts
    nodes_visited: int

    def __len__(self) -> int:
        return len(self.slots)


@dataclass(frozen=True)
class FlatLevel:
    """One tree level in structure-of-arrays form.

    Node ``i`` of the level owns the contiguous entry slice
    ``node_offsets[i] : node_offsets[i + 1]``; ``lows``/``highs``/``counts``
    are per-entry.  For internal levels, entry ``j`` parents node ``j`` of
    the level below (child-order invariant); for the leaf level, entry
    ``j`` maps to slot ``j`` of the owning tree's leaf payload table.
    """

    node_offsets: np.ndarray  # (n_nodes + 1,) intp, CSR over entries
    lows: np.ndarray          # (n_entries, n_dims) int64
    highs: np.ndarray         # (n_entries, n_dims) int64
    counts: np.ndarray        # (n_entries,) int64

    @property
    def n_nodes(self) -> int:
        return len(self.node_offsets) - 1

    @property
    def n_entries(self) -> int:
        return len(self.counts)


def _gather_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[k], ends[k])`` for all k, vectorized.

    The frontier-expansion gather: given the CSR entry ranges of the
    frontier's nodes, produce the index vector of all their entries with
    two cumulative sums instead of a Python loop over nodes.
    """
    lens = ends - starts
    keep = lens > 0
    if not keep.all():
        starts, lens = starts[keep], lens[keep]
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    out = np.ones(total, dtype=np.intp)
    out[0] = starts[0]
    if len(starts) > 1:
        bounds = np.cumsum(lens[:-1])
        out[bounds] = starts[1:] - (starts[:-1] + lens[:-1]) + 1
    return np.cumsum(out)


class FlatRTree:
    """A compiled, immutable SoA snapshot of a built :class:`RTree`."""

    def __init__(
        self,
        n_dims: int,
        levels: Sequence[FlatLevel],
        leaf_entries: Sequence[Entry] | None = None,
        source_mutations: int = 0,
        *,
        payloads: Sequence[object] | None = None,
    ):
        """Build from either materialized ``leaf_entries`` (the compiler
        path) or a bare ``payloads`` table (the persistence path — leaf
        :class:`Entry` objects are then built lazily, only if a caller
        still asks for the per-entry :meth:`search` contract)."""
        if not levels:
            raise IndexError_("a flat R-tree needs at least the leaf level")
        if (leaf_entries is None) == (payloads is None):
            raise IndexError_(
                "exactly one of leaf_entries / payloads must be given"
            )
        n_leaf = levels[-1].n_entries
        table = leaf_entries if leaf_entries is not None else payloads
        assert table is not None
        if n_leaf != len(table):
            raise IndexError_(
                f"leaf level has {n_leaf} entries but the "
                f"payload table holds {len(table)}"
            )
        for upper, lower in zip(levels, levels[1:]):
            if upper.n_entries != lower.n_nodes:
                raise IndexError_(
                    "child-order invariant violated: "
                    f"{upper.n_entries} internal entries vs "
                    f"{lower.n_nodes} nodes below"
                )
        self.n_dims = n_dims
        self.levels = tuple(levels)       # root level first, leaf level last
        if leaf_entries is not None:
            self._leaf_entries: list[Entry] | None = list(leaf_entries)
            self.payloads: list[object] = [e.payload for e in leaf_entries]
        else:
            self._leaf_entries = None
            self.payloads = list(payloads)  # type: ignore[arg-type]
        self._payload_rows: np.ndarray | None = None
        self.source_mutations = source_mutations

    @property
    def leaf_entries(self) -> list[Entry]:
        """The materialized leaf :class:`Entry` table (built lazily).

        Persistence-loaded trees never pay this unless a caller still uses
        the per-entry :meth:`search`; the array-native pipeline goes
        through :meth:`search_hits` and the bare payload table instead.
        """
        if self._leaf_entries is None:
            leaf = self.levels[-1]
            self._leaf_entries = [
                Entry(
                    rect=Rect(
                        tuple(int(v) for v in leaf.lows[j]),
                        tuple(int(v) for v in leaf.highs[j]),
                    ),
                    payload=self.payloads[j],
                    count=int(leaf.counts[j]),
                )
                for j in range(leaf.n_entries)
            ]
        return self._leaf_entries

    @property
    def payload_rows(self) -> np.ndarray:
        """Per-leaf-slot payload row ids (``payload.row``; ``-1`` if absent).

        One contiguous int64 vector, built once: :meth:`search_hits`
        answers every query with a gather from this array instead of a
        Python attribute walk over hit payloads.
        """
        if self._payload_rows is None:
            rows = np.fromiter(
                (getattr(p, "row", -1) for p in self.payloads),
                dtype=np.int64,
                count=len(self.payloads),
            )
            rows.setflags(write=False)
            self._payload_rows = rows
        return self._payload_rows

    # -- construction ------------------------------------------------------

    @classmethod
    def from_rtree(cls, tree: RTree) -> "FlatRTree":
        """Compile a built pointer tree (dynamic or packed) level by level."""
        levels: list[FlatLevel] = []
        current: list[Node] = [tree.root]
        leaf_entries: list[Entry] = []
        while True:
            level_no = current[0].level
            if any(node.level != level_no for node in current):
                raise IndexError_("tree is not level-balanced; cannot compile")
            node_offsets = np.empty(len(current) + 1, dtype=np.intp)
            node_offsets[0] = 0
            entries: list[Entry] = []
            for i, node in enumerate(current):
                entries.extend(node.entries)
                node_offsets[i + 1] = len(entries)
            n = len(entries)
            lows = np.empty((n, tree.n_dims), dtype=np.int64)
            highs = np.empty((n, tree.n_dims), dtype=np.int64)
            counts = np.empty(n, dtype=np.int64)
            for j, entry in enumerate(entries):
                lows[j] = entry.rect.lows
                highs[j] = entry.rect.highs
                counts[j] = entry.count
            for arr in (node_offsets, lows, highs, counts):
                arr.setflags(write=False)
            levels.append(FlatLevel(node_offsets, lows, highs, counts))
            if level_no == 0:
                leaf_entries = entries
                break
            # Child-order invariant: enumerate the next level's nodes in
            # parent-entry order, so entry j parents node j below.
            current = [e.child for e in entries]  # type: ignore[misc]
        return cls(
            n_dims=tree.n_dims,
            levels=levels,
            leaf_entries=leaf_entries,
            source_mutations=tree.mutations,
        )

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self.levels[-1].n_entries

    @property
    def height(self) -> int:
        return len(self.levels)

    def nbytes(self) -> int:
        """Total array payload of the compiled form (layout footprint)."""
        return sum(
            int(lv.node_offsets.nbytes + lv.lows.nbytes
                + lv.highs.nbytes + lv.counts.nbytes)
            for lv in self.levels
        )

    # -- search ------------------------------------------------------------

    def _matched_leaf_slots(
        self, query: Rect, min_count: int | None
    ) -> tuple[np.ndarray, int]:
        """Shared frontier traversal: matched leaf slots + exact node count.

        ``nodes_visited`` equals the pointer traversal's: the root plus one
        per internal entry that passes the overlap test (and, with
        ``min_count``, the supported filter of Lemma 4.4).
        """
        if query.n_dims != self.n_dims:
            raise IndexError_(
                f"query has {query.n_dims} dims, tree has {self.n_dims}"
            )
        q_lo = np.asarray(query.lows, dtype=np.int64)
        q_hi = np.asarray(query.highs, dtype=np.int64)
        visited = 1  # the root is always read
        frontier = np.zeros(1, dtype=np.intp)
        last = len(self.levels) - 1
        for depth, level in enumerate(self.levels):
            cand = _gather_ranges(
                level.node_offsets[frontier], level.node_offsets[frontier + 1]
            )
            if cand.size == 0:
                return np.empty(0, dtype=np.intp), visited
            mask = np.logical_and(
                (level.lows[cand] <= q_hi).all(axis=1),
                (q_lo <= level.highs[cand]).all(axis=1),
            )
            if min_count is not None:
                mask &= level.counts[cand] >= min_count
            matched = cand[mask]
            if depth == last:
                return matched, visited
            # Every matched internal entry's child is pushed — and later
            # popped — by the pointer search, hence counted as visited.
            visited += int(matched.size)
            frontier = matched
        raise AssertionError("unreachable")  # pragma: no cover

    def search(self, query: Rect, min_count: int | None = None) -> SearchResult:
        """Vectorized window search; same contract as :meth:`RTree.search`.

        Returns the same hit set and the *exact same* ``nodes_visited`` as
        the pointer traversal.  Hits are returned in leaf-array order,
        which may differ from the pointer tree's stack order; no caller
        depends on hit order.
        """
        slots, visited = self._matched_leaf_slots(query, min_count)
        entries = self.leaf_entries
        return SearchResult([entries[j] for j in slots.tolist()], visited)

    def search_hits(self, query: Rect, min_count: int | None = None) -> FlatHits:
        """Array-native window search: payload rows and counts, no Entries.

        Same hit set and ``nodes_visited`` as :meth:`search`, but the
        result stays in contiguous arrays — leaf slots, payload rows (MIP
        ids) and global counts — so the operator pipeline can carry
        candidates without materializing one :class:`Entry` per hit.
        """
        slots, visited = self._matched_leaf_slots(query, min_count)
        return FlatHits(
            slots=slots,
            rows=self.payload_rows[slots],
            counts=self.levels[-1].counts[slots],
            nodes_visited=visited,
        )

    # -- persistence -------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The compiled arrays as a flat mapping (``.npz``-ready).

        Payloads are *not* serialized here — the caller owns the payload
        table and rebuilds :class:`Entry` objects on load (persistence
        stores the MIP row per leaf slot).
        """
        out: dict[str, np.ndarray] = {
            "shape": np.asarray([self.n_dims, len(self.levels)], dtype=np.int64),
        }
        for i, level in enumerate(self.levels):
            out[f"offsets_{i}"] = np.asarray(level.node_offsets, dtype=np.int64)
            out[f"lows_{i}"] = level.lows
            out[f"highs_{i}"] = level.highs
            out[f"counts_{i}"] = level.counts
        return out

    @classmethod
    def from_arrays(
        cls,
        arrays: Mapping[str, np.ndarray],
        payloads: Sequence[object],
        payload_rows: np.ndarray | None = None,
    ) -> "FlatRTree":
        """Rebuild a compiled tree from :meth:`to_arrays` output.

        ``payloads[j]`` becomes the payload of leaf slot ``j``.  Leaf
        :class:`Entry` objects are *not* rebuilt here: the loaded tree is
        payload-first and serves :meth:`search_hits` straight from the
        stored arrays, materializing entries lazily only if a caller still
        uses :meth:`search`.  Structural invariants (CSR monotonicity,
        child-order cardinalities) are re-validated so a corrupted file
        fails loudly.

        ``payload_rows`` optionally installs the per-slot row vector
        directly (shard workers pass the shared-memory array so the
        rebuilt view stays zero-copy and payload objects never exist);
        when omitted it is derived lazily from ``payloads`` as usual.
        """
        try:
            n_dims, n_levels = (int(x) for x in arrays["shape"])
        except KeyError as exc:
            raise IndexError_(f"flat arrays missing field {exc}") from exc
        if n_levels < 1:
            raise IndexError_("flat arrays declare no levels")
        levels: list[FlatLevel] = []
        for i in range(n_levels):
            try:
                offsets = np.asarray(arrays[f"offsets_{i}"], dtype=np.intp)
                lows = np.asarray(arrays[f"lows_{i}"], dtype=np.int64)
                highs = np.asarray(arrays[f"highs_{i}"], dtype=np.int64)
                counts = np.asarray(arrays[f"counts_{i}"], dtype=np.int64)
            except KeyError as exc:
                raise IndexError_(f"flat arrays missing field {exc}") from exc
            n = len(counts)
            if (
                len(offsets) < 2
                or offsets[0] != 0
                or offsets[-1] != n
                or np.any(np.diff(offsets) < 0)
                or lows.shape != (n, n_dims)
                or highs.shape != (n, n_dims)
            ):
                raise IndexError_(f"flat level {i} arrays are inconsistent")
            for arr in (offsets, lows, highs, counts):
                arr.setflags(write=False)
            levels.append(FlatLevel(offsets, lows, highs, counts))
        tree = cls(
            n_dims=n_dims,
            levels=levels,
            payloads=payloads,
            source_mutations=0,  # matches a freshly packed source tree
        )
        if payload_rows is not None:
            rows = np.asarray(payload_rows, dtype=np.int64)
            if len(rows) != len(tree.payloads):
                raise IndexError_(
                    f"payload_rows has {len(rows)} slots for "
                    f"{len(tree.payloads)} payloads"
                )
            tree._payload_rows = rows
        return tree
