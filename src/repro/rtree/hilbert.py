"""n-dimensional Hilbert curve indexing (Skilling's algorithm, AIP 2004).

Kamel & Faloutsos's packed R-tree [11] orders rectangles by the Hilbert
value of their centers before tiling them into fully packed leaves; this
module provides the coordinate -> Hilbert-index transform for arbitrary
dimensionality and precision.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import DataError

__all__ = ["hilbert_index", "bits_needed"]


def bits_needed(max_coordinate: int) -> int:
    """Bits per dimension required to represent coordinates up to the max."""
    if max_coordinate < 0:
        raise DataError("coordinates must be non-negative")
    return max(1, int(max_coordinate).bit_length())


def hilbert_index(coords: Sequence[int], bits: int) -> int:
    """Hilbert-curve index of an n-dimensional point.

    ``coords`` are non-negative integers, each below ``2**bits``.  Returns a
    single integer in ``[0, 2**(bits * n))`` such that points close on the
    curve are close in space (the property packing relies on).
    """
    n = len(coords)
    if n == 0:
        raise DataError("need at least one coordinate")
    x = list(coords)
    for i, c in enumerate(x):
        if c < 0 or c >> bits:
            raise DataError(f"coordinate {c} out of range for {bits} bits (dim {i})")

    # Skilling: inverse undo of the Gray-code transpose representation.
    m = 1 << (bits - 1)
    # Step 1: convert coordinates into the 'transposed' Hilbert form.
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p  # invert
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t

    # Step 2: interleave the transposed bits into a single index.
    index = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(n):
            index = (index << 1) | ((x[i] >> bit) & 1)
    return index
