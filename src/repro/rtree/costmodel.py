"""Analytical R-tree query cost (Theodoridis, Stefanakis & Sellis [21]).

The expected number of node accesses of a window query is

    NA(q) = 1 + sum over non-root levels j of
            N_j * prod_i min(1, s_{j,i} + q_i)

where ``N_j`` is the node count at level ``j``, ``s_{j,i}`` the average
normalized MBR extent of level-``j`` nodes along dimension ``i`` and
``q_i`` the normalized query extent.  ``s + q`` is the classic Minkowski-sum
probability that a uniformly placed box of extent ``s`` intersects a window
of extent ``q``; each factor is clamped to 1 since probabilities cannot
exceed it.  This powers COST(S) and the SELECT term of COST(ARM) in the
COLARM cost model (Equations 1 and 6).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import DataError
from repro.rtree.rtree import LevelStat

__all__ = ["expected_node_accesses", "expected_leaf_matches"]


def expected_node_accesses(
    stats: Sequence[LevelStat],
    query_extents: Sequence[float],
    cardinalities: Sequence[int],
) -> float:
    """Expected nodes visited by a window query of the given cell extents.

    ``query_extents`` are in cells per dimension; ``cardinalities`` are the
    grid domain sizes used to normalize both query and node extents.
    """
    _check(query_extents, cardinalities)
    if not stats:
        return 0.0
    q_norm = [q / c for q, c in zip(query_extents, cardinalities)]
    total = 1.0  # the root is always read
    root_level = max(s.level for s in stats)
    for stat in stats:
        if stat.level == root_level:
            continue
        prob = 1.0
        for dim, (extent, card) in enumerate(zip(stat.avg_extents, cardinalities)):
            prob *= min(1.0, extent / card + q_norm[dim])
        total += stat.n_nodes * prob
    return total


def expected_leaf_matches(
    n_boxes: int,
    avg_box_extents: Sequence[float],
    query_extents: Sequence[float],
    cardinalities: Sequence[int],
) -> float:
    """Lemma 4.1: expected number of stored boxes intersecting the query.

    ``|{I^Q_S}| = N * prod_i min(1, (D^P_avg_i + D^Q_i))`` with all extents
    normalized by the grid cardinalities.
    """
    _check(query_extents, cardinalities)
    if len(avg_box_extents) != len(cardinalities):
        raise DataError("avg_box_extents/cardinalities dimensionality mismatch")
    prob = 1.0
    for box, query, card in zip(avg_box_extents, query_extents, cardinalities):
        prob *= min(1.0, box / card + query / card)
    return n_boxes * prob


def _check(query_extents: Sequence[float], cardinalities: Sequence[int]) -> None:
    if len(query_extents) != len(cardinalities):
        raise DataError("query/cardinalities dimensionality mismatch")
    if any(c <= 0 for c in cardinalities):
        raise DataError("cardinalities must be positive")
    if any(q < 0 for q in query_extents):
        raise DataError("query extents must be non-negative")
