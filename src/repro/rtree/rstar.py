"""R*-tree insertion (Beckmann, Kriegel, Schneider & Seeger, SIGMOD 1990).

The R*-tree improves Guttman's R-tree with three insertion-time heuristics:

* **ChooseSubtree** — at the level above the leaves, pick the child whose
  *overlap* with its siblings grows least (ties by area enlargement, then
  area); higher up, least area enlargement as before;
* **Split** — pick the split *axis* minimizing the total margin of the
  candidate distributions, then the *distribution* minimizing overlap
  (ties by combined area);
* **Forced reinsertion** — on the first overflow at each level per
  insertion, re-insert the 30% of entries farthest from the node's center
  instead of splitting, which lets entries migrate to better nodes.

Search, deletion and the supported filter are inherited unchanged from
:class:`~repro.rtree.rtree.RTree`, so an ``RStarTree`` can back the
MIP-index anywhere a plain R-tree can.
"""

from __future__ import annotations

from typing import Any

from repro.rtree.geometry import Rect, mbr_of
from repro.rtree.node import Entry, Node
from repro.rtree.rtree import DEFAULT_MAX_ENTRIES, RTree

__all__ = ["RStarTree"]

#: Fraction of entries evicted by forced reinsertion (the paper's p = 30%).
_REINSERT_FRACTION = 0.3


class RStarTree(RTree):
    """Dynamic n-dimensional R*-tree."""

    def __init__(
        self,
        n_dims: int,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
    ):
        super().__init__(n_dims, max_entries, min_entries)
        self._reinserted_levels: set[int] = set()

    # -- insertion ----------------------------------------------------------

    def insert(self, rect: Rect, payload: Any, count: int = 0) -> None:
        # Forced reinsertion fires at most once per level per top-level
        # insertion (the paper's OverflowTreatment bookkeeping).
        self._reinserted_levels = set()
        super().insert(rect, payload, count)

    def _insert_entry(self, node: Node, entry: Entry, target_level: int
                      ) -> Node | None:
        if node.level == target_level:
            node.entries.append(entry)
        else:
            slot = self._choose_subtree(node, entry.rect)
            split_child = self._insert_entry(slot.child, entry, target_level)
            slot.rect = slot.child.mbr()
            slot.count = slot.child.max_count()
            if split_child is not None:
                node.entries.append(
                    Entry(
                        rect=split_child.mbr(),
                        child=split_child,
                        count=split_child.max_count(),
                    )
                )
        if len(node.entries) > self.max_entries:
            return self._overflow(node)
        return None

    def _overflow(self, node: Node) -> Node | None:
        """OverflowTreatment: reinsert once per level, then split."""
        is_root = node is self._root
        if not is_root and node.level not in self._reinserted_levels:
            self._reinserted_levels.add(node.level)
            self._forced_reinsert(node)
            return None
        return self._split(node)

    def _forced_reinsert(self, node: Node) -> None:
        """Evict the entries farthest from the node center and re-add them."""
        center = node.mbr().center()

        def distance(entry: Entry) -> float:
            ec = entry.rect.center()
            return sum((a - b) ** 2 for a, b in zip(ec, center))

        node.entries.sort(key=distance)
        n_evict = max(1, int(round(len(node.entries) * _REINSERT_FRACTION)))
        evicted = node.entries[len(node.entries) - n_evict:]
        del node.entries[len(node.entries) - n_evict:]
        for entry in evicted:
            # Re-insert at the same level ("close reinsert", far-first).
            split = super()._insert_entry(self._root, entry, node.level)
            if split is not None:
                self._grow_root(split)

    # -- ChooseSubtree --------------------------------------------------------

    def _choose_subtree(self, node: Node, rect: Rect) -> Entry:
        if node.level == 1:
            # Children are leaves: minimize overlap enlargement.
            return min(
                node.entries,
                key=lambda e: (
                    self._overlap_enlargement(node, e, rect),
                    e.rect.enlargement(rect),
                    e.rect.area(),
                ),
            )
        return min(
            node.entries,
            key=lambda e: (e.rect.enlargement(rect), e.rect.area()),
        )

    @staticmethod
    def _overlap_enlargement(node: Node, candidate: Entry, rect: Rect) -> int:
        """Growth of the candidate's overlap with its siblings if it takes
        ``rect``."""
        enlarged = candidate.rect.union(rect)

        def overlap(box: Rect) -> int:
            total = 0
            for sibling in node.entries:
                if sibling is candidate:
                    continue
                intersection = box.intersection(sibling.rect)
                if intersection is not None:
                    total += intersection.area()
            return total

        return overlap(enlarged) - overlap(candidate.rect)

    # -- Split ------------------------------------------------------------------

    def _split(self, node: Node) -> Node:
        entries = node.entries
        m = self.min_entries
        best: tuple[int, int, bool, list[Entry], list[Entry]] | None = None
        best_axis: int | None = None

        for axis in range(self.n_dims):
            axis_margin = 0
            axis_best: tuple[int, int, list[Entry], list[Entry]] | None = None
            for by_upper in (False, True):
                ordered = sorted(
                    entries,
                    key=lambda e: (
                        e.rect.highs[axis] if by_upper else e.rect.lows[axis],
                        e.rect.highs[axis],
                    ),
                )
                for k in range(m, len(ordered) - m + 1):
                    left, right = ordered[:k], ordered[k:]
                    box_l = mbr_of(e.rect for e in left)
                    box_r = mbr_of(e.rect for e in right)
                    axis_margin += box_l.margin() + box_r.margin()
                    intersection = box_l.intersection(box_r)
                    overlap = intersection.area() if intersection else 0
                    area = box_l.area() + box_r.area()
                    key = (overlap, area)
                    if axis_best is None or key < axis_best[:2]:
                        axis_best = (overlap, area, left, right)
            if best_axis is None or axis_margin < best_axis:
                best_axis = axis_margin
                assert axis_best is not None
                best = (axis_best[0], axis_best[1], True, axis_best[2],
                        axis_best[3])

        assert best is not None
        _, _, _, left, right = best
        node.entries = list(left)
        return Node(level=node.level, entries=list(right))
