"""Multi-process serving cluster: mmap-shared workers, focal-key routing.

One :class:`~repro.serving.QueryService` scales until its engine lock
saturates a core; this module takes the system past one process.  An
asyncio **router** fronts ``W`` worker *processes*, each running its own
service + engine over the *same* format-v2 snapshot opened with
``load_index(mmap_mode="r")`` — the table's cell matrix, the flat R-tree
traversal arrays, and the packed kernel matrices are file-backed pages
every worker on the box shares, so worker ``i`` pays private RSS only
for its cache/optimizer state and the per-record tidset integers.

Three protocols make the split safe:

* **Consistent-hash focal routing.**  Requests route by a
  :class:`HashRing` over the canonical focal key
  (:func:`repro.core.query.canonical_focal_key`) — the same identity the
  rule cache and request coalescing already share — so identical and
  related queries land on the same worker and per-worker coalescing +
  warm-cache locality survive the split.  Join/leave remaps only the
  keys adjacent to the moved ring points (~``1/W`` of the key space).

* **Epoch publish.**  Exactly one writer (the router's engine) owns the
  delta store.  :meth:`ClusterService.publish` folds pending mutations,
  writes ``snapshot-<epoch>.colarm.npz`` with ``compress=False`` (so the
  members stay mappable), then atomically replaces ``EPOCH.json`` — a
  reader either sees the old epoch or the complete new one, never a torn
  snapshot.  Every request is stamped with the minimum epoch it is
  allowed to be served at; a worker that is behind reloads *before*
  executing, so a serve at a stale generation is impossible by
  construction.

* **Crash respawn.**  A reader thread per worker detects EOF on the
  worker pipe; an unexpected death respawns the worker (bounded by
  ``max_respawns``) and re-sends its in-flight requests — executions are
  deterministic, so the retried responses are byte-identical.  A worker
  past its respawn budget is removed from the ring and its in-flight
  requests re-route to the survivors.
"""

from __future__ import annotations

import asyncio
import bisect
import gc
import hashlib
import itertools
import json
import multiprocessing as mp
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.engine import Colarm
from repro.core.persistence import (
    load_cache,
    load_index,
    save_cache,
    save_index,
)
from repro.core.plans import PlanKind, plan_from_name
from repro.core.query import LocalizedQuery, canonical_focal_key
from repro.errors import DataError, ServiceClosedError, ServiceError
from repro.itemsets.rules import Rule
from repro.serving import QueryService, ServingConfig

__all__ = [
    "HashRing",
    "ClusterConfig",
    "ClusterResponse",
    "ClusterService",
    "InProcessCluster",
    "EpochInfo",
    "EpochPublisher",
    "read_epoch",
    "private_rss_kb",
]

EPOCH_FILE = "EPOCH.json"


# -- consistent hashing ------------------------------------------------------


def _point(data: bytes) -> int:
    """A stable 64-bit ring coordinate.

    ``hash()`` is salted per process, so it cannot place the same key at
    the same coordinate in the router and in a test harness — blake2b
    gives process-independent placement for free.
    """
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring of integer worker ids.

    Each worker owns ``replicas`` pseudo-random points on a 64-bit
    circle; a key routes to the owner of the first point clockwise from
    the key's own coordinate.  Adding or removing a worker moves only
    the keys adjacent to that worker's points — everything else keeps
    its route, which is what keeps per-worker cache locality alive
    through membership changes.
    """

    def __init__(self, replicas: int = 96):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._hashes: list[int] = []       # sorted ring coordinates
        self._owners: list[int] = []       # worker id at the same slot
        self._workers: set[int] = set()

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: int) -> bool:
        return worker_id in self._workers

    @property
    def workers(self) -> tuple[int, ...]:
        return tuple(sorted(self._workers))

    def _points(self, worker_id: int) -> list[int]:
        return [
            _point(f"worker-{worker_id}:{r}".encode())
            for r in range(self.replicas)
        ]

    def add(self, worker_id: int) -> None:
        if worker_id in self._workers:
            raise ValueError(f"worker {worker_id} already on the ring")
        for h in self._points(worker_id):
            at = bisect.bisect_left(self._hashes, h)
            self._hashes.insert(at, h)
            self._owners.insert(at, worker_id)
        self._workers.add(worker_id)

    def remove(self, worker_id: int) -> None:
        if worker_id not in self._workers:
            raise ValueError(f"worker {worker_id} not on the ring")
        keep = [
            (h, w)
            for h, w in zip(self._hashes, self._owners)
            if w != worker_id
        ]
        self._hashes = [h for h, _ in keep]
        self._owners = [w for _, w in keep]
        self._workers.discard(worker_id)

    def route(self, key: bytes) -> int:
        """The worker owning ``key``; raises when the ring is empty."""
        if not self._hashes:
            raise ServiceError("hash ring is empty — no workers")
        at = bisect.bisect_right(self._hashes, _point(key))
        if at == len(self._hashes):
            at = 0
        return self._owners[at]


def _focal_key_bytes(q: LocalizedQuery, cardinalities) -> bytes:
    """The routing identity: the canonical focal key, stably encoded."""
    return repr(canonical_focal_key(q.range_selections, cardinalities)).encode()


# -- epoch publishing --------------------------------------------------------


@dataclass(frozen=True)
class EpochInfo:
    """One published epoch: which snapshot serves it, at what generation."""

    epoch: int
    snapshot: str
    generation: int
    n_records: int
    expand: bool = False
    cache: str | None = None

    def snapshot_path(self, directory: Path) -> Path:
        return Path(directory) / self.snapshot

    def cache_path(self, directory: Path) -> Path | None:
        return Path(directory) / self.cache if self.cache else None

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "snapshot": self.snapshot,
            "generation": self.generation,
            "n_records": self.n_records,
            "expand": self.expand,
            "cache": self.cache,
        }


def read_epoch(directory: str | Path) -> EpochInfo | None:
    """The currently published epoch, or ``None`` before the first publish."""
    path = Path(directory) / EPOCH_FILE
    try:
        meta = json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        raise DataError(f"cannot read epoch file {path}: {exc}") from exc
    return EpochInfo(
        epoch=int(meta["epoch"]),
        snapshot=str(meta["snapshot"]),
        generation=int(meta["generation"]),
        n_records=int(meta["n_records"]),
        expand=bool(meta.get("expand", False)),
        cache=meta.get("cache"),
    )


class EpochPublisher:
    """The single-writer side of the epoch-publish protocol.

    Owns the writer engine (and with it the PR-9 delta store).  Each
    :meth:`publish` folds whatever mutations are pending, writes a fresh
    uncompressed snapshot — ``compress=False`` is load-bearing: deflated
    members cannot be memory-mapped, and the whole point of the cluster
    is that workers share the snapshot's pages — and then atomically
    replaces ``EPOCH.json`` via a temp file + ``os.replace``, so readers
    see either the previous epoch or the complete new one.
    """

    def __init__(self, engine: Colarm, directory: str | Path,
                 keep_snapshots: int = 2):
        self.engine = engine
        self.directory = Path(directory)
        self.keep_snapshots = max(keep_snapshots, 1)
        current = read_epoch(self.directory)
        self.epoch = current.epoch if current is not None else 0
        self.n_publishes = 0

    def _fold(self) -> None:
        """Land every pending mutation in the main index."""
        maintained = self.engine.maintenance
        if maintained is None:
            return
        if maintained.recompacting:
            maintained.poll_recompaction(wait=True)
            self.engine.poll_maintenance()
        pending = maintained.n_delta_records + (
            maintained.n_main_records - maintained.n_main_live
        )
        if pending:
            maintained.rebuild()
            self.engine.poll_maintenance()

    def publish(self) -> EpochInfo:
        """Fold, snapshot, and atomically advance the published epoch."""
        self._fold()
        index = self.engine.index
        if index.rtree.tree.mutations != 0:
            raise DataError(
                "cannot publish a structurally mutated index — fold it "
                "into a fresh build first"
            )
        epoch = self.epoch + 1
        self.directory.mkdir(parents=True, exist_ok=True)
        snapshot = f"snapshot-{epoch:06d}.colarm.npz"
        save_index(
            index,
            self.directory / snapshot,
            weights=self.engine.optimizer.weights,
            compress=False,
        )
        cache_name = None
        cache = self.engine.cache
        if cache is not None and len(cache._entries):
            cache_name = f"snapshot-{epoch:06d}.cache.npz"
            save_cache(cache, self.directory / cache_name, compress=False)
        info = EpochInfo(
            epoch=epoch,
            snapshot=snapshot,
            generation=index.generation,
            n_records=index.table.n_records,
            expand=self.engine.expand,
            cache=cache_name,
        )
        tmp = self.directory / (EPOCH_FILE + ".tmp")
        tmp.write_text(json.dumps(info.as_dict()))
        os.replace(tmp, self.directory / EPOCH_FILE)
        self.epoch = epoch
        self.n_publishes += 1
        self._gc(epoch)
        return info

    def _gc(self, epoch: int) -> None:
        """Drop snapshots older than the retention window (best effort —
        a worker mid-reload may still hold the previous epoch open)."""
        floor = epoch - self.keep_snapshots
        for path in self.directory.glob("snapshot-*.npz"):
            try:
                n = int(path.name.split("-")[1].split(".")[0])
            except (IndexError, ValueError):
                continue
            if n <= floor:
                try:
                    path.unlink()  # the glob covers the .cache.npz sidecars too
                except OSError:
                    pass


# -- configuration / responses ----------------------------------------------


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for the router and its workers."""

    workers: int = 2                 #: worker processes to spawn
    serving: ServingConfig = field(default_factory=ServingConfig)
    replicas: int = 96               #: ring points per worker
    max_respawns: int = 2            #: crash respawns per worker slot
    cache_budget_bytes: int = 16 << 20   #: per-worker rule-cache budget
    use_cache: bool = True           #: workers serve through their cache
    warm_top_k: int = 8              #: hot focal groups seeded per publish
    start_method: str | None = None  #: mp start method (None: fork if available)
    ready_timeout_s: float = 120.0   #: worker must load within this bound

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")


@dataclass
class ClusterResponse:
    """One routed response: the rules plus where/when they were served."""

    rules: list[Rule]
    plan: PlanKind
    cached: bool
    worker: int
    epoch: int
    generation: int
    trace: dict

    @property
    def n_rules(self) -> int:
        return len(self.rules)


def private_rss_kb() -> int | None:
    """This process's private (unshared) resident set, in KiB.

    Reads ``/proc/self/smaps_rollup`` and sums ``Private_Clean`` +
    ``Private_Dirty`` — file-backed pages mapped by several processes
    (the snapshot members under mmap) land in the *Shared* buckets and
    are deliberately excluded: they cost the box once, not per worker.
    Returns ``None`` where the proc file is unavailable.
    """
    try:
        text = Path("/proc/self/smaps_rollup").read_text()
    except OSError:
        return None
    total = 0
    for line in text.splitlines():
        if line.startswith(("Private_Clean:", "Private_Dirty:")):
            total += int(line.split()[1])
    return total


def _trim_heap() -> None:
    """Return freed allocator pages to the OS (best effort, glibc only).

    Loading a snapshot leaves transient peaks (reconstruction buffers,
    verification copies) parked on the malloc heap; ``malloc_trim``
    hands the reclaimable tail back so a worker's measured unique RSS
    reflects what it actually keeps."""
    gc.collect()
    try:
        import ctypes

        ctypes.CDLL(None).malloc_trim(0)
    except (OSError, AttributeError):  # pragma: no cover - non-glibc
        pass


# -- the worker process ------------------------------------------------------


class _WorkerRuntime:
    """Everything one worker process keeps between requests."""

    def __init__(self, worker_id: int, directory: Path,
                 config: ClusterConfig):
        self.worker_id = worker_id
        self.directory = directory
        self.config = config
        self.epoch = 0
        self.generation = 0
        self.baseline_rss_kb = private_rss_kb()
        self.n_reloads = 0
        self.engine: Colarm | None = None
        self.service: QueryService | None = None
        self._reload_lock = asyncio.Lock()

    def _load(self, info: EpochInfo) -> None:
        """Open one published epoch: mmap the snapshot, warm the cache.

        ``verify="stored"`` because the snapshot came from this cluster's
        own writer: tidsets are still cross-checked bit-for-bit against
        the archive's kernel matrices, but no miner runs — the mining
        heap watermark would otherwise dominate the worker's unique RSS
        and defeat the point of sharing the index via mmap.
        """
        index, weights = load_index(
            info.snapshot_path(self.directory), mmap_mode="r",
            verify="stored",
        )
        # Continue the published generation lineage: stamps issued here
        # are comparable with every other worker's and the writer's.
        index.clock.base = info.generation - index.generation
        engine = Colarm.from_index(index, weights=weights,
                                   expand=info.expand)
        if self.config.use_cache:
            cache = None
            cache_path = info.cache_path(self.directory)
            if cache_path is not None and cache_path.exists():
                cache = load_cache(cache_path, index, mmap_mode="r")
            # calibrate=False: cost weights came with the snapshot; a
            # per-worker refit would make siblings price plans apart.
            engine.enable_cache(
                budget_bytes=self.config.cache_budget_bytes,
                calibrate=False,
                cache=cache,
            )
        self.engine = engine
        self.service = QueryService(engine, self.config.serving)
        self.epoch = info.epoch
        self.generation = info.generation
        _trim_heap()

    def load_current(self) -> None:
        info = read_epoch(self.directory)
        if info is None:
            raise DataError(
                f"worker {self.worker_id}: no published epoch in "
                f"{self.directory}"
            )
        self._load(info)

    async def ensure_epoch(self, min_epoch: int) -> None:
        """Hot-swap to a newer epoch between requests.

        Drains the current service first, so in-flight executions finish
        against the snapshot they started on; only then does the worker
        re-point at the new snapshot — a request can never observe half
        of each.
        """
        if self.epoch >= min_epoch:
            return
        async with self._reload_lock:
            if self.epoch >= min_epoch:
                return
            info = read_epoch(self.directory)
            if info is None or info.epoch < min_epoch:
                raise DataError(
                    f"worker {self.worker_id}: epoch {min_epoch} required "
                    f"but {info.epoch if info else None} published"
                )
            await self.service.stop(drain=True)
            self._load(info)
            await self.service.start()
            self.n_reloads += 1

    def rss(self) -> dict:
        current = private_rss_kb()
        unique = (
            current - self.baseline_rss_kb
            if current is not None and self.baseline_rss_kb is not None
            else None
        )
        return {
            "worker": self.worker_id,
            "baseline_kb": self.baseline_rss_kb,
            "private_kb": current,
            "unique_kb": unique,
        }

    def stats(self) -> dict:
        snap = self.service.snapshot() if self.service is not None else {}
        snap.update(
            worker=self.worker_id,
            epoch=self.epoch,
            generation=self.generation,
            n_reloads=self.n_reloads,
        )
        return snap


async def _worker_loop(worker_id: int, conn, directory: Path,
                       config: ClusterConfig) -> None:
    runtime = _WorkerRuntime(worker_id, directory, config)
    runtime.load_current()
    await runtime.service.start()
    loop = asyncio.get_running_loop()
    tasks: set[asyncio.Task] = set()
    conn.send(("ready", worker_id, runtime.epoch, runtime.generation,
               runtime.rss()))

    async def serve(req_id: int, query: LocalizedQuery, plan_name,
                    use_cache: bool, min_epoch: int) -> None:
        try:
            await runtime.ensure_epoch(min_epoch)
            plan = plan_from_name(plan_name) if plan_name else None
            try:
                served = await runtime.service.submit(
                    query, plan=plan, use_cache=use_cache
                )
            except ServiceClosedError:
                # Lost the race with a hot-swap: the drain closed the old
                # service under us.  Wait the swap out, run on the new one.
                async with runtime._reload_lock:
                    pass
                served = await runtime.service.submit(
                    query, plan=plan, use_cache=use_cache
                )
            conn.send(("ok", req_id, {
                "rules": served.rules,
                "plan": served.plan,
                "cached": served.cached,
                "trace": served.trace.as_dict(),
                "worker": worker_id,
                "epoch": runtime.epoch,
                "generation": runtime.generation,
            }))
        except Exception as exc:  # noqa: BLE001 — the router re-raises it
            conn.send(("err", req_id, exc))

    while True:
        try:
            msg = await loop.run_in_executor(None, conn.recv)
        except (EOFError, OSError):
            break
        tag = msg[0]
        if tag == "query":
            task = asyncio.ensure_future(serve(*msg[1:]))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        elif tag == "reload":
            task = asyncio.ensure_future(runtime.ensure_epoch(msg[1]))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        elif tag == "stats":
            conn.send(("stats", msg[1], runtime.stats()))
        elif tag == "rss":
            conn.send(("rss", msg[1], runtime.rss()))
        elif tag == "stop":
            break
        else:  # pragma: no cover — protocol drift guard
            conn.send(("err", None, ServiceError(f"unknown message {tag!r}")))
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)
    if runtime.service is not None:
        await runtime.service.stop(drain=True)
    conn.send(("bye", worker_id))
    conn.close()


def _worker_main(worker_id: int, conn, directory: str,
                 config: ClusterConfig) -> None:
    # Under the fork start method the child inherits the parent's whole
    # heap copy-on-write — including the writer engine's tidsets.  Freeze
    # those inherited objects so the cyclic collector never traverses
    # (and thereby privately copies) pages this worker will never use;
    # the worker's own index arrives as a read-only mmap of the snapshot.
    gc.collect()
    gc.freeze()
    try:
        asyncio.run(_worker_loop(worker_id, conn, Path(directory), config))
    except KeyboardInterrupt:  # pragma: no cover
        pass


# -- the router --------------------------------------------------------------


class _WorkerHandle:
    """Router-side state for one worker slot."""

    def __init__(self, worker_id: int):
        self.id = worker_id
        self.process = None
        self.conn = None
        self.reader: threading.Thread | None = None
        self.ready: asyncio.Future | None = None
        self.stopping = False
        self.respawns = 0
        self.rss: dict | None = None


class _Pending:
    """One request the router has sent but not yet resolved."""

    __slots__ = ("future", "worker", "message", "key")

    def __init__(self, future, worker, message, key):
        self.future = future
        self.worker = worker
        self.message = message
        self.key = key


class ClusterService:
    """The asyncio router over ``W`` mmap-shared worker processes.

    Construct with the *writer* engine (the one that owns mutation) and
    a snapshot directory, ``await start()``, then :meth:`submit` from
    any number of tasks; ``async with`` does the start/stop pair.  All
    public methods must be called from the event loop thread.
    """

    def __init__(self, engine: Colarm, directory: str | Path,
                 config: ClusterConfig | None = None):
        self.engine = engine
        self.directory = Path(directory)
        self.config = config or ClusterConfig()
        self.ring = HashRing(self.config.replicas)
        self.publisher = EpochPublisher(engine, self.directory)
        self._handles: dict[int, _WorkerHandle] = {}
        self._pending: dict[int, _Pending] = {}
        self._req_ids = itertools.count(1)
        self._min_epoch = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._writer_lock = threading.Lock()
        self._publish_lock: asyncio.Lock = asyncio.Lock()
        self._closed = False
        self._next_slot = 0
        self.route_counts: dict[int, int] = {}
        self._hot: dict[bytes, list] = {}   # key -> [count, example query]
        self.n_crashes = 0
        self.n_respawns = 0
        self.n_rerouted = 0
        if self.config.start_method is not None:
            self._mp = mp.get_context(self.config.start_method)
        else:
            methods = mp.get_all_start_methods()
            self._mp = mp.get_context(
                "fork" if "fork" in methods else methods[0]
            )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "ClusterService":
        if self._closed:
            raise ServiceClosedError("cluster already stopped")
        self._loop = asyncio.get_running_loop()
        if self.engine.maintenance is None:
            # The writer must own a delta store for ingest to have a
            # fold path; calibration already happened (or was skipped)
            # upstream — don't re-fit weights here.
            self.engine.enable_maintenance(calibrate=False)
        await self._run_writer(self.publisher.publish)
        self._min_epoch = self.publisher.epoch
        waits = []
        for _ in range(self.config.workers):
            waits.append(self._spawn(self._next_slot))
            self._next_slot += 1
        await asyncio.gather(*waits)
        for handle in self._handles.values():
            self.ring.add(handle.id)
            self.route_counts.setdefault(handle.id, 0)
        return self

    async def stop(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in list(self._handles.values()):
            await self._stop_worker(handle)
        for pending in list(self._pending.values()):
            if not pending.future.done():
                pending.future.set_exception(
                    ServiceClosedError("cluster stopped")
                )
        self._pending.clear()

    async def __aenter__(self) -> "ClusterService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _stop_worker(self, handle: _WorkerHandle) -> None:
        handle.stopping = True
        try:
            handle.conn.send(("stop",))
        except (OSError, BrokenPipeError):
            pass
        process = handle.process
        await self._loop.run_in_executor(None, process.join, 30)
        if process.is_alive():  # pragma: no cover — stuck worker backstop
            process.terminate()
            await self._loop.run_in_executor(None, process.join, 5)
        if handle.reader is not None:
            await self._loop.run_in_executor(None, handle.reader.join, 5)
        self._handles.pop(handle.id, None)

    def _spawn(self, worker_id: int) -> asyncio.Future:
        """Start one worker process; resolves when it reports ready."""
        handle = self._handles.get(worker_id)
        if handle is None:
            handle = _WorkerHandle(worker_id)
            self._handles[worker_id] = handle
        parent, child = self._mp.Pipe()
        process = self._mp.Process(
            target=_worker_main,
            args=(worker_id, child, str(self.directory), self.config),
            name=f"colarm-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child.close()
        handle.process = process
        handle.conn = parent
        handle.stopping = False
        handle.ready = self._loop.create_future()
        reader = threading.Thread(
            target=self._read_loop,
            args=(handle.id, parent),
            name=f"colarm-router-read-{worker_id}",
            daemon=True,
        )
        handle.reader = reader
        reader.start()
        return asyncio.wait_for(
            asyncio.shield(handle.ready), self.config.ready_timeout_s
        )

    # -- reader thread -> event loop ---------------------------------------

    def _read_loop(self, worker_id: int, conn) -> None:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                self._loop.call_soon_threadsafe(self._on_eof, worker_id, conn)
                return
            self._loop.call_soon_threadsafe(self._on_message, worker_id, msg)

    def _on_message(self, worker_id: int, msg: tuple) -> None:
        tag = msg[0]
        handle = self._handles.get(worker_id)
        if tag == "ready":
            if handle is not None:
                handle.rss = msg[4]
                if handle.ready is not None and not handle.ready.done():
                    handle.ready.set_result(msg)
            return
        if tag == "bye":
            if handle is not None:
                handle.stopping = True
            return
        if tag in ("ok", "err", "stats", "rss"):
            pending = self._pending.pop(msg[1], None)
            if pending is None or pending.future.done():
                return
            if tag == "err":
                pending.future.set_exception(msg[2])
            else:
                pending.future.set_result(msg[2])

    def _on_eof(self, worker_id: int, conn) -> None:
        handle = self._handles.get(worker_id)
        if handle is None or handle.conn is not conn or handle.stopping:
            return  # planned shutdown, or a stale pre-respawn pipe
        self.n_crashes += 1
        asyncio.ensure_future(self._revive(handle))

    async def _revive(self, handle: _WorkerHandle) -> None:
        """Respawn a crashed worker (or retire it) and re-drive its load."""
        orphans = [
            p for p in self._pending.values() if p.worker == handle.id
        ]
        if handle.respawns < self.config.max_respawns:
            handle.respawns += 1
            self.n_respawns += 1
            try:
                await self._spawn(handle.id)
            except Exception:
                await self._retire(handle, orphans)
                return
            for pending in orphans:
                try:
                    handle.conn.send(pending.message)
                except (OSError, BrokenPipeError):  # pragma: no cover
                    pass  # the new pipe died too; the next EOF re-drives
        else:
            await self._retire(handle, orphans)

    async def _retire(self, handle: _WorkerHandle, orphans) -> None:
        """Drop a worker from the ring and re-route its in-flight load."""
        if handle.id in self.ring:
            self.ring.remove(handle.id)
        self._handles.pop(handle.id, None)
        for pending in orphans:
            if pending.key is None or len(self.ring) == 0:
                if not pending.future.done():
                    pending.future.set_exception(ServiceError(
                        f"worker {handle.id} died with no successor"
                    ))
                self._pending.pop(pending.message[1], None)
                continue
            new_worker = self.ring.route(pending.key)
            pending.worker = new_worker
            self.n_rerouted += 1
            try:
                self._handles[new_worker].conn.send(pending.message)
            except (OSError, BrokenPipeError):  # pragma: no cover
                pass  # the successor's EOF handler will re-drive it

    # -- requests ----------------------------------------------------------

    def _send(self, worker_id: int, message: tuple, key: bytes | None):
        req_id = message[1]
        future = self._loop.create_future()
        self._pending[req_id] = _Pending(future, worker_id, message, key)
        try:
            self._handles[worker_id].conn.send(message)
        except (KeyError, OSError, BrokenPipeError):
            pass  # worker just died; its EOF handler re-drives this request
        return future

    async def submit(
        self,
        request: LocalizedQuery | str,
        plan: PlanKind | str | None = None,
        use_cache: bool = True,
    ) -> ClusterResponse:
        """Route one request to its focal-key owner and await the answer."""
        if self._closed:
            raise ServiceClosedError("cluster is stopped")
        q = self.engine.parse(request) if isinstance(request, str) else request
        if isinstance(plan, PlanKind):
            plan = plan.value
        key = _focal_key_bytes(q, self.engine.index.cardinalities)
        worker_id = self.ring.route(key)
        self.route_counts[worker_id] = self.route_counts.get(worker_id, 0) + 1
        hot = self._hot.setdefault(key, [0, q])
        hot[0] += 1
        req_id = next(self._req_ids)
        message = ("query", req_id, q, plan, use_cache, self._min_epoch)
        payload = await self._send(worker_id, message, key)
        return ClusterResponse(
            rules=payload["rules"],
            plan=payload["plan"],
            cached=payload["cached"],
            worker=payload["worker"],
            epoch=payload["epoch"],
            generation=payload["generation"],
            trace=payload["trace"],
        )

    # -- mutation: the single writer ---------------------------------------

    async def _run_writer(self, fn, *args):
        """Run one writer-engine touch off the loop, serialized."""
        def locked():
            with self._writer_lock:
                return fn(*args)
        return await self._loop.run_in_executor(None, locked)

    async def ingest(self, records, publish: bool = True) -> int:
        """Append records through the writer's delta store.

        The mutation becomes query-visible at the next :meth:`publish`
        (immediately, with ``publish=True``): that is the linearization
        point of the epoch-publish protocol.  Returns the writer's new
        generation.
        """
        if self._closed:
            raise ServiceClosedError("cluster is stopped")
        generation = await self._run_writer(self.engine.append, records)
        if publish:
            await self.publish()
        return generation

    async def remove(self, tids, publish: bool = True) -> int:
        """Delete records by tid through the writer's delta store."""
        if self._closed:
            raise ServiceClosedError("cluster is stopped")
        generation = await self._run_writer(self.engine.delete, tids)
        if publish:
            await self.publish()
        return generation

    async def publish(self) -> EpochInfo:
        """Fold + snapshot + advance the epoch, then wake the workers.

        New submissions are stamped with the new epoch the moment this
        returns, so a worker that has not yet hot-swapped reloads before
        serving them — the reload broadcast below is a latency
        optimization, not a correctness requirement.
        """
        async with self._publish_lock:
            info = await self._run_writer(self._publish_locked)
        self._min_epoch = info.epoch
        for handle in self._handles.values():
            if not handle.stopping:
                try:
                    handle.conn.send(("reload", info.epoch))
                except (OSError, BrokenPipeError):  # pragma: no cover
                    pass
        return info

    def _publish_locked(self) -> EpochInfo:
        # Fold *before* seeding: installing a fold rebinds the writer's
        # cache (dropping every entry), so warming only sticks once the
        # delta has landed.  publish() re-checks and finds nothing to fold.
        self.publisher._fold()
        self._seed_cache()
        return self.publisher.publish()

    def _seed_cache(self) -> None:
        """Warm the writer cache with the hottest focal groups, so the
        published sidecar lets workers start warm after a hot-swap."""
        if (
            self.engine.cache is None
            or self.config.warm_top_k <= 0
            or not self._hot
        ):
            return
        hottest = sorted(
            self._hot.items(), key=lambda kv: kv[1][0], reverse=True
        )
        for _, (count, query) in hottest[: self.config.warm_top_k]:
            try:
                self.engine.query(query, use_cache=True)
            except Exception:  # pragma: no cover — warmup is best-effort
                return

    # -- membership --------------------------------------------------------

    async def add_worker(self) -> int:
        """Join one worker: spawn, wait ready, then take its ring points.

        Only ~``1/(W+1)`` of the key space remaps — and only onto the
        joiner, so no surviving worker's warm state is disturbed.
        """
        if self._closed:
            raise ServiceClosedError("cluster is stopped")
        worker_id = self._next_slot
        self._next_slot += 1
        await self._spawn(worker_id)
        self.ring.add(worker_id)
        self.route_counts.setdefault(worker_id, 0)
        return worker_id

    async def remove_worker(self, worker_id: int) -> None:
        """Leave: take the worker off the ring *first* (new requests
        route around it), then let it drain and exit."""
        handle = self._handles.get(worker_id)
        if handle is None:
            raise ServiceError(f"no worker {worker_id}")
        if worker_id in self.ring:
            self.ring.remove(worker_id)
        await self._stop_worker(handle)

    # -- introspection -----------------------------------------------------

    @property
    def workers(self) -> tuple[int, ...]:
        return self.ring.workers

    async def worker_stats(self) -> list[dict]:
        """Per-worker service snapshots (p50/p99, epoch, reload count)."""
        futures = []
        for worker_id in self.workers:
            req_id = next(self._req_ids)
            futures.append(
                self._send(worker_id, ("stats", req_id), None)
            )
        return list(await asyncio.gather(*futures))

    async def worker_rss(self) -> list[dict]:
        """Per-worker private-RSS reports (see :func:`private_rss_kb`)."""
        futures = []
        for worker_id in self.workers:
            req_id = next(self._req_ids)
            futures.append(
                self._send(worker_id, ("rss", req_id), None)
            )
        return list(await asyncio.gather(*futures))

    def snapshot(self) -> dict:
        """Router-side counters (per-worker detail is async: use
        :meth:`worker_stats`)."""
        total = sum(self.route_counts.values())
        return {
            "workers": list(self.workers),
            "epoch": self.publisher.epoch,
            "min_epoch": self._min_epoch,
            "publishes": self.publisher.n_publishes,
            "routed": total,
            "routing": {
                str(w): self.route_counts.get(w, 0) for w in self.workers
            },
            "distinct_focal_groups": len(self._hot),
            "crashes": self.n_crashes,
            "respawns": self.n_respawns,
            "rerouted": self.n_rerouted,
        }


# -- in-process fallback -----------------------------------------------------


class InProcessCluster:
    """The cluster's routing surface without processes.

    ``W`` :class:`QueryService` instances over *one* engine, sharing one
    engine lock, routed through the same :class:`HashRing` — the
    fallback `colarm replay --workers N --in-process` uses on hosts
    where spawning worker processes is unwanted.  It measures routing
    distribution and per-worker service behavior (coalescing, admission,
    p50/p99), not parallel speedup: every execution still serializes on
    the single engine lock.
    """

    def __init__(self, engine: Colarm, config: ClusterConfig | None = None):
        self.engine = engine
        self.config = config or ClusterConfig()
        self.ring = HashRing(self.config.replicas)
        lock = threading.Lock()
        self.services = [
            QueryService(engine, self.config.serving, engine_lock=lock)
            for _ in range(self.config.workers)
        ]
        for worker_id in range(self.config.workers):
            self.ring.add(worker_id)
        self.route_counts = {w: 0 for w in range(self.config.workers)}

    async def start(self) -> "InProcessCluster":
        for service in self.services:
            await service.start()
        return self

    async def stop(self) -> None:
        for service in self.services:
            await service.stop()

    async def __aenter__(self) -> "InProcessCluster":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def submit(
        self,
        request: LocalizedQuery | str,
        plan: PlanKind | str | None = None,
        use_cache: bool = True,
    ) -> ClusterResponse:
        q = self.engine.parse(request) if isinstance(request, str) else request
        key = _focal_key_bytes(q, self.engine.index.cardinalities)
        worker_id = self.ring.route(key)
        self.route_counts[worker_id] += 1
        served = await self.services[worker_id].submit(
            q, plan=plan, use_cache=use_cache
        )
        return ClusterResponse(
            rules=served.rules,
            plan=served.plan,
            cached=served.cached,
            worker=worker_id,
            epoch=0,
            generation=self.engine.index.generation,
            trace=served.trace.as_dict(),
        )

    async def worker_stats(self) -> list[dict]:
        stats = []
        for worker_id, service in enumerate(self.services):
            snap = service.snapshot()
            snap.update(worker=worker_id, epoch=0,
                        generation=self.engine.index.generation,
                        n_reloads=0)
            stats.append(snap)
        return stats

    def snapshot(self) -> dict:
        total = sum(self.route_counts.values())
        return {
            "workers": sorted(self.route_counts),
            "routed": total,
            "routing": {str(w): n for w, n in self.route_counts.items()},
        }


async def replay_cluster(cluster, requests) -> tuple[list, dict]:
    """Submit a workload through a started cluster; gather all responses.

    Mirrors :func:`repro.serving.serve_all`: per-request failures come
    back as the exception object in the results list, and the second
    element is the router snapshot taken after the drain.
    """
    async def one(req):
        try:
            return await cluster.submit(req)
        except ServiceError as exc:
            return exc

    results = await asyncio.gather(*(one(r) for r in requests))
    return list(results), cluster.snapshot()
