"""COLARM: Cost-based Optimization for Localized Association Rule Mining.

A from-scratch Python reproduction of the EDBT 2014 paper (Mukherji,
Rundensteiner & Ward).  The top-level namespace re-exports the pieces a
typical user needs; see ``repro.dataset``, ``repro.itemsets``,
``repro.rtree``, ``repro.core``, ``repro.analysis`` and ``repro.workloads``
for the full API.

Quickstart::

    from repro import Colarm, salary_dataset

    engine = Colarm(salary_dataset(), primary_support=0.15)
    outcome = engine.query(
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
        "WHERE RANGE Location = (Seattle) AND Gender = (F) "
        "HAVING minsupport = 0.5 AND minconfidence = 0.8;"
    )
    for rule in outcome.rules:
        print(rule.render(engine.schema))
"""

from repro.core.engine import Colarm, QueryOutcome
from repro.core.plans import PlanKind
from repro.core.query import LocalizedQuery
from repro.dataset.salary import salary_dataset
from repro.dataset.schema import Attribute, Item, Schema
from repro.dataset.table import RelationalTable
from repro.itemsets.rules import Rule
from repro.serving import QueryService, ServedQuery, ServingConfig

__version__ = "1.0.0"

__all__ = [
    "Colarm",
    "QueryOutcome",
    "PlanKind",
    "LocalizedQuery",
    "Rule",
    "QueryService",
    "ServedQuery",
    "ServingConfig",
    "Attribute",
    "Item",
    "Schema",
    "RelationalTable",
    "salary_dataset",
    "__version__",
]
