"""Tidsets: sets of record ids represented as Python integer bitmasks.

A *tidset* is the set of record ids (tids) supporting an itemset.  COLARM's
online operators spend most of their time intersecting tidsets with the
focal subset, so the representation matters.  Arbitrary-precision integers
give us branch-free AND/OR over 64-bit words plus a hardware popcount via
``int.bit_count`` — on the dataset sizes used here this outperforms both
``set`` and sorted numpy arrays by a wide margin.

The empty tidset is ``0``; the tidset holding tid ``i`` is ``1 << i``.
All functions are pure; tidsets are immutable values.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "EMPTY",
    "from_tids",
    "from_array",
    "full",
    "singleton",
    "count",
    "contains",
    "is_subset",
    "intersect",
    "union",
    "difference",
    "iter_tids",
    "to_list",
]

EMPTY = 0


def from_tids(tids: Iterable[int]) -> int:
    """Build a tidset from an iterable of record ids.

    Builds through a packed little-endian bytearray and converts to an int
    once at the end: setting a bit is O(1), so the whole construction is
    O(n + universe/8) instead of the O(n * words) that incremental big-int
    ``mask |= 1 << tid`` costs (every OR copies every word).  Order and
    duplicates in the input are irrelevant to the result.
    """
    buf = bytearray()
    for tid in tids:
        if tid < 0:
            raise ValueError(f"tid must be non-negative, got {tid}")
        byte, bit = divmod(tid, 8)
        if byte >= len(buf):
            buf.extend(b"\x00" * (byte + 1 - len(buf)))
        buf[byte] |= 1 << bit
    return int.from_bytes(buf, "little")


def from_array(tids) -> int:
    """Build a tidset from a numpy array of record ids, vectorized.

    The array-native sibling of :func:`from_tids` for batch mutation
    paths (delta-store tombstones and matches arrive as index arrays):
    one ``packbits`` over a boolean universe instead of a Python loop.
    Accepts anything ``np.asarray`` takes; duplicates are fine.
    """
    import numpy as np

    tids = np.asarray(tids, dtype=np.int64).ravel()
    if tids.size == 0:
        return EMPTY
    if tids.min() < 0:
        raise ValueError("tid must be non-negative")
    n_bits = int(tids.max()) + 1
    n_bytes = -(-n_bits // 8)
    bits = np.zeros(n_bytes * 8, dtype=np.uint8)
    bits[tids] = 1
    return int.from_bytes(np.packbits(bits, bitorder="little").tobytes(),
                          "little")


def full(n_records: int) -> int:
    """The tidset containing every tid in ``range(n_records)``."""
    if n_records < 0:
        raise ValueError("n_records must be non-negative")
    return (1 << n_records) - 1


def singleton(tid: int) -> int:
    """The tidset holding exactly one tid."""
    if tid < 0:
        raise ValueError(f"tid must be non-negative, got {tid}")
    return 1 << tid


def count(tidset: int) -> int:
    """Number of tids in the set (popcount)."""
    return tidset.bit_count()


def contains(tidset: int, tid: int) -> bool:
    """Whether ``tid`` is a member of ``tidset``."""
    return (tidset >> tid) & 1 == 1


def is_subset(inner: int, outer: int) -> bool:
    """Whether every tid of ``inner`` is also in ``outer``."""
    return inner & ~outer == 0


def intersect(a: int, b: int) -> int:
    """Set intersection."""
    return a & b


def union(a: int, b: int) -> int:
    """Set union."""
    return a | b


def difference(a: int, b: int) -> int:
    """Tids in ``a`` but not in ``b``."""
    return a & ~b


def iter_tids(tidset: int) -> Iterator[int]:
    """Yield member tids in increasing order.

    Peels the lowest set bit each step, so the cost is proportional to the
    number of members rather than the universe size.
    """
    while tidset:
        low = tidset & -tidset
        yield low.bit_length() - 1
        tidset ^= low


def to_list(tidset: int) -> list[int]:
    """Member tids as a sorted list."""
    return list(iter_tids(tidset))
