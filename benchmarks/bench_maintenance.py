"""MAINT — array-native ingest-while-serving vs scalar delta and rebuild.

Models the workload the delta store exists for: a *Zipf-distributed
query stream* served while record batches keep arriving.  Each round
appends a batch (plus a couple of deletes), then serves a burst of
Zipf-drawn queries from a fixed pool; the same episode is priced three
ways:

* **array** — the maintained kernel path (``MaintainedIndex.query``):
  vectorized batch append, then stored∩D^Q counts off the flat R-tree
  and the batched AND+popcount kernels with vectorized delta
  corrections;
* **scalar** — the same maintained state served through
  ``MaintainedIndex.query_scalar``: per-item big-int ANDs over main plus
  a per-record Python loop over the matching delta rows (the
  pre-kernel baseline the refactor removed);
* **rebuild** — no delta store at all: a from-scratch
  ``build_mip_index`` over the live records every round, then kernel
  serves against the fresh index (the freshness-equivalent strategy
  without maintenance).

Rounds end with an **untimed** fold (``recompact``): compaction runs in
the background in production and freshness never depends on it, whereas
the rebuild strategy must pay its build *before* serving fresh answers —
that asymmetry is the point of the delta store.  Before timing is
trusted, every coverage-guaranteed pool query served off main+delta is
asserted **byte-identical** (expanded mode) to the fresh rebuild of the
live records.  The acceptance bar is a >= 2x geometric-mean round
speedup of the array path over *both* baselines per dataset.  Results
land in ``benchmarks/results/maintenance_speedup.csv`` plus the
top-level ``BENCH_maintenance.json``.  Run as a pytest test or
directly::

    PYTHONPATH=src python benchmarks/bench_maintenance.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.core.maintenance import MaintainedIndex
from repro.core.mipindex import build_mip_index
from repro.core.plans import PlanKind, execute_plan
from repro.dataset.table import RelationalTable
from repro.workloads.experiments import EXPERIMENTS
from repro.workloads.queries import random_focal_query

from _harness import BENCH_SMOKE, paused_gc, smoke_grid

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_maintenance.json"

DATASETS = smoke_grid(("chess", "mushroom"), ("mushroom",))
#: Distinct focal queries in the pool; Zipf-drawn serves per round.
N_DISTINCT = smoke_grid(8, 5)
N_ROUNDS = smoke_grid(5, 3)
BATCH = smoke_grid(48, 24)
QUERIES_PER_ROUND = smoke_grid(12, 6)
DELETES_PER_ROUND = 2
#: Zipf rank exponent: rank-k query drawn with p ∝ 1/k**ZIPF_S.
ZIPF_S = 1.1
#: Focal fractions kept large enough that the per-round delta (one
#: batch — rounds fold before the next) stays inside the coverage
#: guarantee for most pool queries.
FRACTIONS = (0.6, 0.4, 0.25)

MIN_SPEEDUP = 2.0


def _zipf_ranks(n_items: int, n_draws: int, rng) -> np.ndarray:
    weights = 1.0 / np.arange(1, n_items + 1) ** ZIPF_S
    return rng.choice(n_items, size=n_draws, p=weights / weights.sum())


def _query_pool(spec, table, seed: int):
    """``N_DISTINCT`` distinct focal queries crossing the spec's grids."""
    pool = []
    seen = set()
    k = 0
    while len(pool) < N_DISTINCT:
        rng = np.random.default_rng(seed * 1000 + k)
        k += 1
        wq = random_focal_query(
            table,
            FRACTIONS[k % len(FRACTIONS)],
            spec.minsupps[k % len(spec.minsupps)],
            spec.minconfs[k % len(spec.minconfs)],
            rng,
        )
        if wq.query not in seen:
            seen.add(wq.query)
            pool.append(wq.query)
    return pool


def rule_key(rules):
    return sorted(
        (r.antecedent, r.consequent, r.support_count, round(r.confidence, 12))
        for r in rules
    )


def run_bench(seed: int = 13) -> dict:
    records: list[dict] = []
    identity: dict[str, dict] = {}
    for di, dataset in enumerate(DATASETS):
        spec = EXPERIMENTS[dataset]
        table = spec.make_table()
        # Hold back the ingest stream from the tail of the dataset so
        # appended batches are real records, not synthetic duplicates.
        n_stream = N_ROUNDS * BATCH
        base = RelationalTable(table.schema, table.data[:-n_stream].copy())
        stream = table.data[-n_stream:]
        pool = _query_pool(spec, base, seed + di)

        mx = MaintainedIndex(
            base, primary_support=spec.primary_support, auto_rebuild=False
        )
        rows = [list(map(int, r)) for r in base.data]
        alive = [True] * len(rows)
        rng = np.random.default_rng(seed + 77 + di)
        covered = mismatches = 0

        for rnd in range(N_ROUNDS):
            batch = [
                list(map(int, r))
                for r in stream[rnd * BATCH : (rnd + 1) * BATCH]
            ]
            draws = _zipf_ranks(len(pool), QUERIES_PER_ROUND, rng)
            live_tids = [t for t, ok in enumerate(alive) if ok]
            doomed = sorted(
                int(live_tids[i])
                for i in rng.choice(
                    len(live_tids), size=DELETES_PER_ROUND, replace=False
                )
            )

            # -- array path: vectorized append + kernel serves ---------
            with paused_gc():
                t0 = time.perf_counter()
                mx.append(batch)
                mx.delete(doomed)
                append_s = time.perf_counter() - t0
            rows.extend(batch)
            alive.extend([True] * len(batch))
            for tid in doomed:
                alive[tid] = False
            with paused_gc():
                t0 = time.perf_counter()
                for qi in draws:
                    mx.query(pool[qi])
                array_serve_s = time.perf_counter() - t0

            # -- scalar path: same maintained state, scalar serves -----
            with paused_gc():
                t0 = time.perf_counter()
                for qi in draws:
                    mx.query_scalar(pool[qi])
                scalar_serve_s = time.perf_counter() - t0

            # -- rebuild path: fresh index over the live records -------
            live = np.asarray(
                [r for r, ok in zip(rows, alive) if ok],
                dtype=base.data.dtype,
            )
            live_table = RelationalTable(table.schema, live)
            with paused_gc():
                t0 = time.perf_counter()
                fresh = build_mip_index(
                    live_table, primary_support=spec.primary_support
                )
                rebuild_build_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                for qi in draws:
                    execute_plan(PlanKind.SEV, fresh, pool[qi])
                rebuild_serve_s = time.perf_counter() - t0

            # Byte-identity (expanded mode, where all plan families
            # agree exactly) for every distinct covered query drawn
            # this round — the bar is exactness, not approximation.
            for qi in sorted(set(int(q) for q in draws)):
                q = pool[qi]
                mask = np.ones(len(live), dtype=bool)
                for attr, values in q.range_selections.items():
                    mask &= np.isin(live[:, attr], list(values))
                dq_live = int(mask.sum())
                if dq_live == 0 or not mx.coverage_guaranteed(q, dq_live):
                    continue
                covered += 1
                expected = rule_key(
                    execute_plan(PlanKind.SEV, fresh, q, expand=True).rules
                )
                if rule_key(mx.query(q, expand=True)) != expected:
                    mismatches += 1
                assert mismatches == 0, (
                    f"maintained serve diverged from rebuild: "
                    f"{dataset} round {rnd} query {qi}"
                )

            array_s = append_s + array_serve_s
            scalar_s = append_s + scalar_serve_s
            rebuild_s = rebuild_build_s + rebuild_serve_s
            records.append({
                "dataset": dataset,
                "round": rnd,
                "n_main": mx.n_main_live,
                "n_delta": mx.n_delta_records,
                "n_queries": len(draws),
                "append_s": append_s,
                "array_serve_s": array_serve_s,
                "scalar_serve_s": scalar_serve_s,
                "rebuild_build_s": rebuild_build_s,
                "rebuild_serve_s": rebuild_serve_s,
                "speedup_vs_scalar": scalar_s / array_s,
                "speedup_vs_rebuild": rebuild_s / array_s,
            })

            # Fold off the hot path (background in production): the next
            # round's delta is one batch again, keeping every round
            # inside the coverage regime.
            mx.recompact()
            rows[:] = [r for r, ok in zip(rows, alive) if ok]
            alive[:] = [True] * len(rows)

        identity[dataset] = {"covered": covered, "mismatches": mismatches}
    return {"series": records, "identity": identity}


def _geomean(values) -> float:
    return float(np.exp(np.mean(np.log(values))))


def write_results(out: dict) -> None:
    records = out["series"]
    headers = ["dataset", "round", "main", "delta", "queries", "append_ms",
               "array_ms", "scalar_ms", "rebuild_ms", "vs_scalar",
               "vs_rebuild"]
    rows = [
        [r["dataset"], r["round"], r["n_main"], r["n_delta"], r["n_queries"],
         f"{r['append_s'] * 1e3:.2f}",
         f"{(r['append_s'] + r['array_serve_s']) * 1e3:.1f}",
         f"{(r['append_s'] + r['scalar_serve_s']) * 1e3:.1f}",
         f"{(r['rebuild_build_s'] + r['rebuild_serve_s']) * 1e3:.1f}",
         f"{r['speedup_vs_scalar']:.1f}x", f"{r['speedup_vs_rebuild']:.1f}x"]
        for r in records
    ]
    print("\nMAINT — array-native ingest-while-serving vs scalar and rebuild")
    print(format_table(headers, rows))
    for dataset in DATASETS:
        cells = [r for r in records if r["dataset"] == dataset]
        ident = out["identity"][dataset]
        print(
            f"  {dataset}: geomean "
            f"{_geomean([r['speedup_vs_scalar'] for r in cells]):.1f}x vs "
            f"scalar, "
            f"{_geomean([r['speedup_vs_rebuild'] for r in cells]):.1f}x vs "
            f"rebuild-per-batch over {len(cells)} rounds; identity "
            f"{ident['covered'] - ident['mismatches']}/{ident['covered']} "
            f"covered queries byte-identical"
        )
    write_csv(RESULTS_DIR / "maintenance_speedup.csv", headers, rows)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "maintenance",
                "numpy": np.__version__,
                "zipf_s": ZIPF_S,
                "n_distinct": N_DISTINCT,
                "n_rounds": N_ROUNDS,
                "batch": BATCH,
                "queries_per_round": QUERIES_PER_ROUND,
                "smoke": BENCH_SMOKE,
                "series": records,
                "identity": out["identity"],
            },
            indent=2,
        )
        + "\n"
    )


def test_maintenance_speedup():
    out = run_bench()
    write_results(out)
    for dataset in DATASETS:
        cells = [r for r in out["series"] if r["dataset"] == dataset]
        assert cells, f"no rounds for {dataset}"
        ident = out["identity"][dataset]
        # Identity before speed: a fast wrong answer gates nothing.
        assert ident["covered"] > 0, f"no covered queries on {dataset}"
        assert ident["mismatches"] == 0, (
            f"{ident['mismatches']} diverging serves on {dataset}"
        )
        # Acceptance bar: >= 2x geomean round speedup over the scalar
        # main+delta path AND over rebuild-per-batch.
        vs_scalar = _geomean([r["speedup_vs_scalar"] for r in cells])
        vs_rebuild = _geomean([r["speedup_vs_rebuild"] for r in cells])
        assert vs_scalar >= MIN_SPEEDUP, (
            f"array path {vs_scalar:.2f}x < {MIN_SPEEDUP}x vs scalar "
            f"on {dataset}"
        )
        assert vs_rebuild >= MIN_SPEEDUP, (
            f"array path {vs_rebuild:.2f}x < {MIN_SPEEDUP}x vs "
            f"rebuild-per-batch on {dataset}"
        )


if __name__ == "__main__":
    write_results(run_bench())
