"""SERVING — concurrent Zipf traffic through the cost-admission service.

Models the ROADMAP's north-star workload: a burst of concurrent localized
mining requests over one shared engine, where a few hot focal regions
absorb most of the traffic (Zipf over a warm pool the cache has seen)
and a minority of requests hit cold regions (exercising in-flight
coalescing — many concurrent requests for one cold region must cost one
execution).

Three measured quantities per dataset:

* **naive sequential** — every request of the stream executed fresh,
  one after another, with no cache and no service (the per-distinct
  fresh time summed over the stream's draws): the baseline a client
  loop without the serving layer would pay;
* **served burst** — the whole stream submitted concurrently to
  :class:`repro.serving.QueryService` (cache enabled and warmed on the
  hot pool): wall-clock span, throughput, and the p50/p99 of the
  per-request latencies the service records;
* **byte-identity** — every served response is asserted identical to
  the cold ``compare_plans`` reference of its plan family before any
  number is reported.

Acceptance bars (enforced by the ``serving-gate`` CI job):
throughput >= 3x naive sequential, p99 <= 5x p50, and 100% identity.
Results land in ``benchmarks/results/serving_latency.csv`` plus the
top-level ``BENCH_serving.json``.  Run as a pytest test or directly::

    PYTHONPATH=src python benchmarks/bench_serving.py
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.core.plans import PlanKind
from repro.serving import QueryService, ServingConfig
from repro.workloads.experiments import EXPERIMENTS
from repro.workloads.queries import random_focal_query

from _harness import BENCH_SMOKE, build_engine, paused_gc, smoke_grid

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_serving.json"

DATASETS = smoke_grid(("chess", "mushroom"), ("mushroom",))
#: Hot (cache-warmed) and cold distinct focal queries, and stream length.
N_WARM = smoke_grid(8, 5)
N_COLD = smoke_grid(4, 3)
N_REQUESTS = smoke_grid(400, 120)
#: Fraction of the stream drawn (Zipf) from the warm pool; the rest is
#: spread over the cold pool, so coalescing gets real concurrent fan-in.
WARM_FRACTION = 0.85
ZIPF_S = 1.1
FRACTIONS = (0.5, 0.3, 0.1)

#: Gate bars (also asserted by the serving-gate CI job).
THROUGHPUT_BAR = 3.0     # served throughput >= 3x naive sequential
TAIL_BAR = 5.0           # p99 <= 5x p50


def _zipf_ranks(n_items: int, n_draws: int, rng) -> np.ndarray:
    weights = 1.0 / np.arange(1, n_items + 1) ** ZIPF_S
    return rng.choice(n_items, size=n_draws, p=weights / weights.sum())


def _query_pool(spec, table, seed: int, n_queries: int):
    pool = []
    seen = set()
    k = 0
    while len(pool) < n_queries:
        rng = np.random.default_rng(seed * 1000 + k)
        k += 1
        wq = random_focal_query(
            table,
            FRACTIONS[k % len(FRACTIONS)],
            spec.minsupps[k % len(spec.minsupps)],
            spec.minconfs[k % len(spec.minconfs)],
            rng,
        )
        if wq.query not in seen:
            seen.add(wq.query)
            pool.append(wq.query)
    return pool


def _stream(n_warm: int, n_cold: int, n_requests: int, seed: int):
    """Request stream as indices into warm pool (>=0) / cold pool (<0)."""
    rng = np.random.default_rng(seed)
    n_hot = int(round(n_requests * WARM_FRACTION))
    warm_draws = _zipf_ranks(n_warm, n_hot, rng)
    cold_draws = rng.integers(0, n_cold, size=n_requests - n_hot)
    stream = np.concatenate([warm_draws, -1 - cold_draws])
    rng.shuffle(stream)
    return stream


def run_bench(seed: int = 11) -> dict:
    records: list[dict] = []
    snapshots: dict[str, dict] = {}
    for di, dataset in enumerate(DATASETS):
        spec = EXPERIMENTS[dataset]
        engine = build_engine(spec)
        warm = _query_pool(spec, engine.table, seed + di, N_WARM)
        cold = _query_pool(spec, engine.table, seed + di + 500, N_COLD)
        cold = [q for q in cold if q not in warm][:N_COLD]
        pool = warm + cold
        stream = _stream(len(warm), len(cold), N_REQUESTS, seed + 77 + di)
        requests = [
            pool[s] if s >= 0 else pool[len(warm) + (-1 - s)] for s in stream
        ]

        # Family-aware cold references: the identity bar for every serve.
        refs = []
        for q in pool:
            with paused_gc():
                results = engine.compare_plans(q)
            refs.append({
                "mip_rules": results[PlanKind.SSVS].rules,
                "arm_rules": results[PlanKind.ARM].rules,
            })

        # Naive sequential baseline: per-distinct fresh time (no cache,
        # no service), summed over the stream's actual draws.
        fresh_s = []
        for q in pool:
            with paused_gc():
                start = time.perf_counter()
                outcome = engine.query(q, use_cache=False)
                fresh_s.append(time.perf_counter() - start)
            expected = (
                refs[pool.index(q)]["arm_rules"]
                if outcome.plan is PlanKind.ARM
                else refs[pool.index(q)]["mip_rules"]
            )
            assert outcome.rules == expected
        naive_total_s = float(sum(
            fresh_s[s if s >= 0 else len(warm) + (-1 - s)] for s in stream
        ))

        # Warm the cache on the hot pool (unmeasured), then fire the
        # whole stream concurrently through the service.
        engine.enable_cache()
        for q in warm:
            engine.query(q)

        async def burst(engine=engine, requests=requests):
            service = QueryService(engine, ServingConfig(
                max_pending=len(requests) + 1, workers=2,
            ))
            async with service:
                start = time.perf_counter()
                served = await asyncio.gather(
                    *(service.submit(q) for q in requests)
                )
                span = time.perf_counter() - start
            return served, span, service.snapshot()

        served, span, snap = asyncio.run(burst())

        n_identical = 0
        for q, resp in zip(requests, served):
            qi = pool.index(q)
            expected = (
                refs[qi]["arm_rules"]
                if resp.plan is PlanKind.ARM
                else refs[qi]["mip_rules"]
            )
            assert resp.rules == expected, (
                f"served rules diverge from cold serial: {dataset} query {qi}"
            )
            n_identical += 1

        throughput = len(requests) / span
        naive_qps = len(requests) / naive_total_s
        records.append({
            "dataset": dataset,
            "n_requests": len(requests),
            "n_distinct": len(pool),
            "span_s": span,
            "throughput_qps": throughput,
            "naive_qps": naive_qps,
            "speedup": throughput / naive_qps,
            "p50_s": snap["p50_s"],
            "p99_s": snap["p99_s"],
            "tail_ratio": (
                snap["p99_s"] / snap["p50_s"] if snap["p50_s"] > 0 else 0.0
            ),
            "executions": snap["executions"],
            "coalesced": snap["coalesced"],
            "cache_short_circuits": snap["cache_short_circuits"],
            "identical": n_identical,
        })
        snapshots[dataset] = snap
    return {"series": records, "snapshots": snapshots}


def write_results(out: dict) -> None:
    records = out["series"]
    headers = ["dataset", "requests", "naive qps", "served qps", "speedup",
               "p50 ms", "p99 ms", "tail", "execs", "coalesced", "cached"]
    rows = [
        [r["dataset"], r["n_requests"], f"{r['naive_qps']:.1f}",
         f"{r['throughput_qps']:.1f}", f"{r['speedup']:.1f}x",
         f"{r['p50_s'] * 1e3:.1f}", f"{r['p99_s'] * 1e3:.1f}",
         f"{r['tail_ratio']:.1f}x", r["executions"], r["coalesced"],
         r["cache_short_circuits"]]
        for r in records
    ]
    print("\nSERVING — concurrent Zipf traffic vs naive sequential")
    print(format_table(headers, rows))
    for r in records:
        print(
            f"  {r['dataset']}: {r['identical']}/{r['n_requests']} "
            f"byte-identical; {r['executions']} executions served "
            f"{r['n_requests']} requests"
        )
    write_csv(RESULTS_DIR / "serving_latency.csv", headers, rows)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "serving",
                "numpy": np.__version__,
                "zipf_s": ZIPF_S,
                "warm_fraction": WARM_FRACTION,
                "n_requests": N_REQUESTS,
                "smoke": BENCH_SMOKE,
                "series": records,
                "snapshots": out["snapshots"],
            },
            indent=2,
        )
        + "\n"
    )


def test_serving_gate():
    out = run_bench()
    write_results(out)
    for r in out["series"]:
        # 100% byte-identity is asserted per request inside run_bench;
        # re-check the tally so a silent skip cannot pass the gate.
        assert r["identical"] == r["n_requests"], (
            f"{r['dataset']}: only {r['identical']}/{r['n_requests']} "
            f"responses verified"
        )
        assert r["speedup"] >= THROUGHPUT_BAR, (
            f"{r['dataset']}: served throughput {r['speedup']:.2f}x naive "
            f"< {THROUGHPUT_BAR}x"
        )
        assert r["tail_ratio"] <= TAIL_BAR, (
            f"{r['dataset']}: p99 {r['p99_s'] * 1e3:.1f} ms > "
            f"{TAIL_BAR}x p50 {r['p50_s'] * 1e3:.1f} ms"
        )


if __name__ == "__main__":
    write_results(run_bench())
