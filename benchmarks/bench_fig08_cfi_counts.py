"""FIG8 — number of closed frequent itemsets vs primary threshold.

Paper: Figure 8 (log-log): for chess and PUMSB the CFI count rises
drastically as the primary threshold drops; mushroom grows more gradually.
This bench regenerates the three series over the synthetic stand-ins and
benchmarks CHARM itself at each dataset's chosen primary threshold.
"""

from __future__ import annotations

import pytest

from _harness import RESULTS_DIR
from repro.analysis.reporting import format_series, write_csv
from repro.itemsets.charm import charm
from repro.workloads.experiments import EXPERIMENTS


@pytest.mark.parametrize("miner_name", ["charm", "dcharm"])
@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_fig08_charm_at_primary_threshold(benchmark, name, miner_name):
    """Time the offline closed-itemset run at the primary threshold.

    Benchmarks both the tidset miner (CHARM) and the diffset variant
    (dCHARM) — the offline cost Figure 8's x-axis trades against.
    """
    from repro.itemsets.dcharm import dcharm

    spec = EXPERIMENTS[name]
    table = spec.make_table()
    tidsets = table.item_tidsets()  # warm the per-item tidsets first
    miner = charm if miner_name == "charm" else dcharm

    closed = benchmark.pedantic(
        miner, args=(tidsets, table.n_records, spec.primary_support),
        rounds=3, iterations=1,
    )
    assert len(closed) > 0


def test_fig08_series(benchmark):
    """Regenerate the Figure 8 series: CFI counts per primary threshold."""

    def run():
        series = {}
        for name, spec in sorted(EXPERIMENTS.items()):
            table = spec.make_table()
            tidsets = table.item_tidsets()
            counts = [
                len(charm(tidsets, table.n_records, threshold))
                for threshold in spec.fig8_thresholds
            ]
            series[name] = (spec.fig8_thresholds, counts)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFIG8 — closed frequent itemsets by primary threshold")
    rows = []
    for name, (thresholds, counts) in series.items():
        print(" ", format_series(name, [f"{t:.0%}" for t in thresholds], counts))
        rows.extend([name, t, c] for t, c in zip(thresholds, counts))
        # the paper's qualitative claim: counts rise as the threshold drops
        assert all(a <= b for a, b in zip(counts, counts[1:])), name
    write_csv(RESULTS_DIR / "fig08_cfi_counts.csv",
              ["dataset", "primary_threshold", "closed_itemsets"], rows)
