"""CLUSTER — W mmap-shared worker processes vs one in-process service.

The tentpole measurement for :mod:`repro.cluster`: a Zipf request stream
over distinct focal regions of a wide synthetic table, served two ways —

* **single** — one :class:`repro.serving.QueryService` over the engine
  in-process (the pre-cluster architecture): the engine lock plus the
  GIL serialize mining no matter how many threads the pool has;
* **cluster** — ``W = 4`` worker processes over one published
  ``compress=False`` snapshot, each mmap-mapping the same archive and
  owning a consistent-hash slice of the focal-key space.

Every response in both runs is asserted **byte-identical** to a cold
serial reference before any number is reported.  Two gates (enforced by
the ``cluster-gate`` CI job through :func:`test_cluster_gate`):

* throughput: cluster >= 2x single — enforced only where the host can
  actually run the workers concurrently (``available_cpus() >= 4``;
  smaller hosts still run the identity checks and record the numbers);
* shared memory: every worker's **unique RSS right after loading the
  snapshot** (``Private_Clean + Private_Dirty`` growth since worker
  start, from ``/proc/self/smaps_rollup``) <= 25% of the snapshot file
  it maps — enforced at the full benchmark size (the smoke grid's toy
  snapshot would be dominated by the ~1.5 MB fixed Python overhead and
  is recorded unenforced).

RSS after serving the stream is also recorded, unenforced: mining
scratch is workload-dependent and exists in any architecture; the gated
number isolates what sharing the *index* via mmap saves.  Results land
in ``benchmarks/results/cluster_speedup.csv`` plus the top-level
``BENCH_cluster.json``.  Run as a pytest test or directly::

    PYTHONPATH=src python benchmarks/bench_cluster.py
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.cluster import ClusterConfig, ClusterService, read_epoch
from repro.core.engine import Colarm
from repro.dataset.synthetic import chess_like
from repro.parallel import available_cpus
from repro.serving import QueryService, ServingConfig
from repro.workloads.queries import random_focal_query

from _harness import BENCH_SMOKE, paused_gc, smoke_grid

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_cluster.json"

#: Wide, dense table with a high primary-support floor: few MIPs, so the
#: per-worker heap (item/MIP tidsets) stays small next to the archive.
N_RECORDS = smoke_grid(400_000, 60_000)
N_ATTRIBUTES = 12
PRIMARY_SUPPORT = 0.55
WORKERS = 4
N_DISTINCT = smoke_grid(24, 8)
N_REQUESTS = smoke_grid(72, 24)
ZIPF_S = 1.1
FRACTIONS = (0.5, 0.3, 0.1)
MINSUPP = 0.55
MINCONF = 0.7

#: Gate bars (also asserted by the cluster-gate CI job).
SPEEDUP_BAR = 2.0        # cluster throughput >= 2x single-process
RSS_BAR = 0.25           # per-worker unique RSS <= 25% of the snapshot
RSS_ENFORCED = not BENCH_SMOKE
SPEEDUP_ENFORCED = available_cpus() >= WORKERS


def _query_pool(table, seed: int):
    pool, seen, k = [], set(), 0
    while len(pool) < N_DISTINCT:
        rng = np.random.default_rng(seed * 1000 + k)
        k += 1
        wq = random_focal_query(
            table, FRACTIONS[k % len(FRACTIONS)], MINSUPP, MINCONF, rng
        )
        if wq.query not in seen:
            seen.add(wq.query)
            pool.append(wq.query)
    return pool


def _stream(n_distinct: int, seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, n_distinct + 1) ** ZIPF_S
    draws = rng.choice(n_distinct, size=N_REQUESTS, p=weights / weights.sum())
    # Every distinct query appears at least once, so the identity check
    # and the routing distribution cover the whole pool.
    draws[:n_distinct] = np.arange(n_distinct)
    rng.shuffle(draws)
    return draws.tolist()


def run_bench(seed: int = 23) -> dict:
    table = chess_like(
        n_records=N_RECORDS, n_attributes=N_ATTRIBUTES, seed=7
    )
    engine = Colarm(table, primary_support=PRIMARY_SUPPORT)
    pool = _query_pool(table, seed)
    stream = _stream(len(pool), seed + 77)
    requests = [pool[i] for i in stream]

    # Cold serial references: the identity bar for every serve.
    refs = []
    for q in pool:
        with paused_gc():
            refs.append(engine.query(q, use_cache=False).rules)

    # Single-process service over the same engine.
    async def single_burst():
        service = QueryService(engine, ServingConfig(
            max_pending=len(requests) + 1, workers=2,
        ))
        async with service:
            start = time.perf_counter()
            served = await asyncio.gather(
                *(service.submit(q, use_cache=False) for q in requests)
            )
            span = time.perf_counter() - start
        return served, span

    with paused_gc():
        single_served, single_span = asyncio.run(single_burst())
    n_single_identical = sum(
        resp.rules == refs[i] for i, resp in
        zip(stream, single_served, strict=True)
    )

    # The cluster: publish one snapshot, fan out W mmap-shared workers.
    async def cluster_burst():
        with tempfile.TemporaryDirectory() as tmp:
            config = ClusterConfig(
                workers=WORKERS,
                use_cache=False,
                serving=ServingConfig(
                    max_pending=len(requests) + 1, workers=2,
                ),
            )
            async with ClusterService(engine, Path(tmp), config) as cluster:
                info = read_epoch(tmp)
                snapshot_bytes = info.snapshot_path(Path(tmp)).stat().st_size
                rss_cold = await cluster.worker_rss()
                start = time.perf_counter()
                served = await asyncio.gather(
                    *(cluster.submit(q, use_cache=False) for q in requests)
                )
                span = time.perf_counter() - start
                rss_warm = await cluster.worker_rss()
                stats = await cluster.worker_stats()
                snap = cluster.snapshot()
        return served, span, snapshot_bytes, rss_cold, rss_warm, stats, snap

    with paused_gc():
        (cluster_served, cluster_span, snapshot_bytes,
         rss_cold, rss_warm, worker_stats, snap) = asyncio.run(cluster_burst())
    n_cluster_identical = sum(
        resp.rules == refs[i] for i, resp in
        zip(stream, cluster_served, strict=True)
    )

    single_qps = len(requests) / single_span
    cluster_qps = len(requests) / cluster_span
    rss_ratios = [
        r["unique_kb"] * 1024 / snapshot_bytes
        for r in rss_cold if r["unique_kb"] is not None
    ]
    return {
        "n_records": N_RECORDS,
        "n_mips": engine.index.n_mips,
        "n_requests": len(requests),
        "n_distinct": len(pool),
        "snapshot_bytes": snapshot_bytes,
        "single": {
            "span_s": single_span,
            "throughput_qps": single_qps,
            "identical": n_single_identical,
        },
        "cluster": {
            "workers": WORKERS,
            "span_s": cluster_span,
            "throughput_qps": cluster_qps,
            "identical": n_cluster_identical,
            "routing": snap["routing"],
            "per_worker": [
                {
                    "worker": s["worker"],
                    "served": s.get("served", 0),
                    "p50_ms": s.get("p50_s", 0.0) * 1e3,
                    "p99_ms": s.get("p99_s", 0.0) * 1e3,
                }
                for s in worker_stats
            ],
        },
        "speedup": cluster_qps / single_qps,
        "rss": {
            "measured": bool(rss_ratios),
            "cold_unique_kb": [r["unique_kb"] for r in rss_cold],
            "after_serving_unique_kb": [r["unique_kb"] for r in rss_warm],
            "max_cold_ratio": max(rss_ratios) if rss_ratios else None,
        },
    }


def write_results(out: dict) -> None:
    headers = ["mode", "workers", "requests", "span s", "qps", "identical"]
    rows = [
        ["single", 1, out["n_requests"],
         f"{out['single']['span_s']:.2f}",
         f"{out['single']['throughput_qps']:.1f}",
         f"{out['single']['identical']}/{out['n_requests']}"],
        ["cluster", out["cluster"]["workers"], out["n_requests"],
         f"{out['cluster']['span_s']:.2f}",
         f"{out['cluster']['throughput_qps']:.1f}",
         f"{out['cluster']['identical']}/{out['n_requests']}"],
    ]
    print("\nCLUSTER — mmap-shared workers vs single-process service")
    print(format_table(headers, rows))
    print(f"  speedup: {out['speedup']:.2f}x "
          f"(bar {SPEEDUP_BAR}x, enforced={SPEEDUP_ENFORCED})")
    ratio = out["rss"]["max_cold_ratio"]
    print(f"  snapshot: {out['snapshot_bytes'] / 1e6:.1f} MB; per-worker "
          f"cold unique RSS {out['rss']['cold_unique_kb']} KB; max ratio "
          f"{ratio if ratio is None else f'{ratio:.3f}'} "
          f"(bar {RSS_BAR}, enforced={RSS_ENFORCED})")
    print(f"  routing: {out['cluster']['routing']}")
    write_csv(RESULTS_DIR / "cluster_speedup.csv", headers, rows)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "cluster",
                "numpy": np.__version__,
                "available_cpus": available_cpus(),
                "smoke": BENCH_SMOKE,
                "zipf_s": ZIPF_S,
                "primary_support": PRIMARY_SUPPORT,
                "gate": {
                    "min_speedup": SPEEDUP_BAR,
                    "speedup_enforced": SPEEDUP_ENFORCED,
                    "max_rss_ratio": RSS_BAR,
                    "rss_enforced": RSS_ENFORCED,
                },
                "result": out,
            },
            indent=2,
        )
        + "\n"
    )


def test_cluster_gate():
    out = run_bench()
    write_results(out)
    # Identity is unconditional: every response, both modes, any host.
    assert out["single"]["identical"] == out["n_requests"], (
        f"single: only {out['single']['identical']}/{out['n_requests']} "
        "responses byte-identical to the cold serial reference"
    )
    assert out["cluster"]["identical"] == out["n_requests"], (
        f"cluster: only {out['cluster']['identical']}/{out['n_requests']} "
        "responses byte-identical to the cold serial reference"
    )
    # Every worker took a share of the stream (the ring cannot starve
    # one with 24+ distinct focal keys at 96 virtual nodes per worker).
    assert all(n > 0 for n in out["cluster"]["routing"].values()), (
        f"a worker served nothing: {out['cluster']['routing']}"
    )
    if out["rss"]["measured"] and RSS_ENFORCED:
        assert out["rss"]["max_cold_ratio"] <= RSS_BAR, (
            f"worker unique RSS {out['rss']['max_cold_ratio']:.3f} of the "
            f"snapshot exceeds the {RSS_BAR} sharing bar"
        )
    if SPEEDUP_ENFORCED:
        assert out["speedup"] >= SPEEDUP_BAR, (
            f"cluster throughput {out['speedup']:.2f}x single-process "
            f"< {SPEEDUP_BAR}x with {WORKERS} workers"
        )


if __name__ == "__main__":
    write_results(run_bench())
