"""RTREE — pointer-chasing traversal vs the flat SoA frontier traversal.

Measures the SEARCH / SUPPORTED-SEARCH hot path that dominates the online
MIP-side plans after the PR-1 kernel layer (~55% of chess query time):
window queries over Hilbert-packed trees of MIP-style boxes at chess /
mushroom / pumsb grid scale, pointer :meth:`RTree.search` vs
:meth:`FlatRTree.search`.

Every benchmark query is checked for the equivalence contract before it is
timed: identical hit set **and byte-identical** ``nodes_visited`` (the
cost-model unit), so the speedup can never come from doing less work.

The series lands in ``benchmarks/results/rtree_speedup.csv`` plus the
top-level ``BENCH_rtree.json``.  Run as a pytest test (asserts the >=2x
acceptance bar for flat traversal at >=10k indexed boxes) or directly::

    PYTHONPATH=src python benchmarks/bench_rtree.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.rtree.flat import FlatRTree
from repro.rtree.geometry import Rect
from repro.rtree.packing import pack_hilbert

from _harness import BENCH_SMOKE, smoke_grid

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_rtree.json"

#: Grid shapes of the paper's evaluation datasets (see repro.dataset.synthetic):
#: attribute cardinalities of the chess/mushroom/pumsb stand-ins.
DATASET_CARDS = {
    "chess": (4,) + tuple(2 if i % 3 else 3 for i in range(1, 12)),
    "mushroom": (4,) + tuple(3 + (i % 2) for i in range(1, 15)),
    "pumsb": (5,) + tuple(4 + (i % 5) for i in range(1, 16)),
}

#: Smoke mode keeps one gate-eligible size (10k boxes) so the >=2x
#: acceptance bar below is still enforced, just on a smaller grid.
N_BOXES = smoke_grid((2_000, 10_000, 25_000), (2_000, 10_000))
N_QUERIES = smoke_grid(25, 10)
MAX_ENTRIES = 8
REPEATS = smoke_grid(3, 2)


def _mip_boxes(rng: np.random.Generator, cards: tuple[int, ...], n: int):
    """MIP-style boxes: a random subset of attributes fixed to one cell,
    the rest spanning their full domain — the shape the MIP-index packs."""
    n_dims = len(cards)
    items = []
    for k in range(n):
        n_fixed = int(rng.integers(1, min(5, n_dims)))
        fixed = rng.choice(n_dims, size=n_fixed, replace=False)
        lows = [0] * n_dims
        highs = [c - 1 for c in cards]
        for a in fixed:
            v = int(rng.integers(0, cards[a]))
            lows[a] = highs[a] = v
        items.append((Rect(tuple(lows), tuple(highs)), k,
                      int(rng.integers(1, 500))))
    return items


def _focal_windows(rng: np.random.Generator, cards: tuple[int, ...], n: int):
    """Focal-hull-style windows: a couple of range-restricted attributes,
    full domain elsewhere — what SEARCH probes the tree with."""
    n_dims = len(cards)
    queries = []
    for _ in range(n):
        n_restricted = int(rng.integers(1, 4))
        restricted = rng.choice(n_dims, size=n_restricted, replace=False)
        lows = [0] * n_dims
        highs = [c - 1 for c in cards]
        for a in restricted:
            lo = int(rng.integers(0, cards[a]))
            hi = int(rng.integers(lo, cards[a]))
            lows[a], highs[a] = lo, hi
        min_count = int(rng.integers(1, 500))
        queries.append((Rect(tuple(lows), tuple(highs)), min_count))
    return queries


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_dataset(name: str, n_boxes: int, seed: int = 17) -> dict:
    cards = DATASET_CARDS[name]
    rng = np.random.default_rng(seed)
    items = _mip_boxes(rng, cards, n_boxes)
    queries = _focal_windows(rng, cards, N_QUERIES)
    tree = pack_hilbert(len(cards), items, max_entries=MAX_ENTRIES)
    compile_s = _best_of(lambda: FlatRTree.from_rtree(tree), repeats=1)
    flat = FlatRTree.from_rtree(tree)

    # Equivalence contract on every benchmark query, both operators:
    # identical hit sets, byte-identical nodes_visited.
    for query, mc in queries:
        for min_count in (None, mc):
            a = tree.search(query, min_count=min_count)
            b = flat.search(query, min_count=min_count)
            assert sorted(e.payload for e in a.entries) == \
                sorted(e.payload for e in b.entries), (name, n_boxes, query)
            assert a.nodes_visited == b.nodes_visited, (name, n_boxes, query)

    def pointer_search():
        for query, _ in queries:
            tree.search(query)

    def flat_search():
        for query, _ in queries:
            flat.search(query)

    def pointer_supported():
        for query, mc in queries:
            tree.search(query, min_count=mc)

    def flat_supported():
        for query, mc in queries:
            flat.search(query, min_count=mc)

    pointer_s = _best_of(pointer_search)
    flat_s = _best_of(flat_search)
    pointer_sup_s = _best_of(pointer_supported)
    flat_sup_s = _best_of(flat_supported)
    return {
        "dataset": name,
        "n_boxes": n_boxes,
        "n_dims": len(cards),
        "height": tree.height,
        "compile_s": compile_s,
        "search_pointer_s": pointer_s,
        "search_flat_s": flat_s,
        "search_speedup": pointer_s / flat_s if flat_s else float("inf"),
        "supported_pointer_s": pointer_sup_s,
        "supported_flat_s": flat_sup_s,
        "supported_speedup": (
            pointer_sup_s / flat_sup_s if flat_sup_s else float("inf")
        ),
    }


def run_bench() -> list[dict]:
    records = []
    for name in DATASET_CARDS:
        for n_boxes in N_BOXES:
            records.append(_bench_dataset(name, n_boxes))
    return records


def write_results(records: list[dict]) -> None:
    headers = ["dataset", "n_boxes", "height", "compile_ms",
               "search_ptr_ms", "search_flat_ms", "search_speedup",
               "supp_ptr_ms", "supp_flat_ms", "supp_speedup"]
    rows = [
        [r["dataset"], r["n_boxes"], r["height"],
         f"{r['compile_s'] * 1e3:.1f}",
         f"{r['search_pointer_s'] * 1e3:.2f}",
         f"{r['search_flat_s'] * 1e3:.2f}",
         f"{r['search_speedup']:.1f}x",
         f"{r['supported_pointer_s'] * 1e3:.2f}",
         f"{r['supported_flat_s'] * 1e3:.2f}",
         f"{r['supported_speedup']:.1f}x"]
        for r in records
    ]
    print("\nRTREE — pointer traversal vs flat SoA frontier traversal "
          f"({N_QUERIES} focal windows/cell)")
    print(format_table(headers, rows))
    write_csv(RESULTS_DIR / "rtree_speedup.csv", headers, rows)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "rtree",
                "numpy": np.__version__,
                "max_entries": MAX_ENTRIES,
                "n_queries": N_QUERIES,
                "repeats": REPEATS,
                "smoke": BENCH_SMOKE,
                "nodes_visited_identical": True,  # asserted per query above
                "series": records,
            },
            indent=2,
        )
        + "\n"
    )


def test_flat_traversal_speedup():
    records = run_bench()
    write_results(records)
    # Acceptance bar: flat traversal is >= 2x the pointer path for every
    # dataset at >= 10k indexed boxes, for both SEARCH and
    # SUPPORTED-SEARCH (geometric mean over the two operators per cell).
    for r in records:
        if r["n_boxes"] < 10_000:
            continue
        geomean = float(
            np.sqrt(r["search_speedup"] * r["supported_speedup"])
        )
        assert geomean >= 2.0, (
            f"flat speedup {geomean:.2f}x < 2x on {r['dataset']} "
            f"at {r['n_boxes']} boxes"
        )


if __name__ == "__main__":
    write_results(run_bench())
