"""FIG12 — % gains of the optimized plans over the basic S-E-V plan.

Paper: Figure 12: for plan P, gain = (t_SEV - t_P) / t_SEV, per dataset
and overall.  The paper reports minor gains for selection push-up (VS)
and 8-44% for the supported-filter plans, SS-E-U-V the strongest.
"""

from __future__ import annotations

import numpy as np

from _harness import RESULTS_DIR, run_grid
from repro.analysis.reporting import ascii_bars, format_table, write_csv
from repro.core.plans import PlanKind
from repro.workloads.experiments import EXPERIMENTS, FOCAL_FRACTIONS

OPTIMIZED = (PlanKind.SSEUV, PlanKind.SSVS, PlanKind.SSEV, PlanKind.SVS)


def test_fig12_gains(benchmark, engines):
    def run():
        gains: dict[str, dict[PlanKind, float]] = {}
        for name, spec in sorted(EXPERIMENTS.items()):
            cells = run_grid(engines(name), spec, FOCAL_FRACTIONS,
                             queries_per_setting=2, seed=7)
            per_plan = {}
            for kind in OPTIMIZED:
                cell_gains = [
                    (cell.avg_ms[PlanKind.SEV] - cell.avg_ms[kind])
                    / cell.avg_ms[PlanKind.SEV]
                    for cell in cells
                ]
                per_plan[kind] = float(np.mean(cell_gains))
            gains[name] = per_plan
        return gains

    gains = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = ["plan"] + sorted(gains) + ["overall"]
    rows = []
    for kind in OPTIMIZED:
        row = [kind.value]
        values = []
        for name in sorted(gains):
            row.append(f"{gains[name][kind]:.1%}")
            values.append(gains[name][kind])
        row.append(f"{np.mean(values):.1%}")
        rows.append(row)
    print("\nFIG12 — avg gain over the basic S-E-V plan "
          "(paper: VS minor; SS plans 8-44%)")
    print(format_table(headers, rows))
    overall = [
        float(np.mean([gains[name][kind] for name in gains]))
        for kind in OPTIMIZED
    ]
    print()
    print(ascii_bars(
        [k.value for k in OPTIMIZED],
        [g * 100 for g in overall],
        title="overall gain over S-E-V (%)",
    ))
    write_csv(RESULTS_DIR / "fig12_gains.csv", headers, rows)

    # Shape check: the supported-filter family achieves a positive overall
    # gain over S-E-V somewhere.
    ss_family = [
        np.mean([gains[name][kind] for name in gains])
        for kind in (PlanKind.SSEUV, PlanKind.SSVS, PlanKind.SSEV)
    ]
    assert max(ss_family) > 0.0
