"""FIG9 — average CPU cost of the six mining plans, chess dataset.

Paper: Figure 9, charts (a)-(d): |D^Q| in {50, 20, 10, 1}% of |D|, three
minsupp values, minconf fixed at 85%; times averaged over several random
regions per cell, the optimizer's majority choice marked with an arrow.
"""

from __future__ import annotations

import pytest

from _harness import GRID_HEADERS, RESULTS_DIR, grid_rows, run_grid
from repro.analysis.reporting import format_table, write_csv
from repro.core.plans import PlanKind, execute_plan
from repro.workloads.experiments import EXPERIMENTS, FOCAL_FRACTIONS
from repro.workloads.queries import random_focal_query

NAME = "chess"


@pytest.mark.parametrize("kind", list(PlanKind), ids=lambda k: k.value)
@pytest.mark.parametrize("fraction", [0.5, 0.01], ids=["dq50pct", "dq1pct"])
def test_fig09_plan_cells(benchmark, engines, kind, fraction):
    """Benchmark each plan on a representative cell (middle minsupp)."""
    import numpy as np

    engine = engines(NAME)
    spec = EXPERIMENTS[NAME]
    workload = random_focal_query(
        engine.table, fraction, spec.minsupps[1], 0.85,
        np.random.default_rng(23),
    )
    result = benchmark.pedantic(
        execute_plan, args=(kind, engine.index, workload.query),
        rounds=3, iterations=1,
    )
    assert result.kind is kind


def test_fig09_grid(benchmark, engines):
    """Regenerate the full Figure 9 grid and print it."""
    engine = engines(NAME)
    spec = EXPERIMENTS[NAME]
    cells = benchmark.pedantic(
        run_grid, args=(engine, spec, FOCAL_FRACTIONS),
        rounds=1, iterations=1,
    )
    rows = grid_rows(cells)
    print("\nFIG9 — avg plan execution time (ms), chess, minconf=85%")
    print(format_table(GRID_HEADERS, rows))
    write_csv(RESULTS_DIR / "fig09_chess.csv", GRID_HEADERS, rows)

    # Shape checks mirroring the paper's Section 5.1 reading of Fig. 9:
    # a MIP-index plan beats ARM somewhere on the grid ...
    assert any(cell.fastest is not PlanKind.ARM for cell in cells)
    # ... and the supported R-tree filter pays off for a large focal
    # subset (where minsupp * |D^Q| rises above the primary floor).
    ss = (PlanKind.SSEUV, PlanKind.SSVS, PlanKind.SSEV)
    plain = (PlanKind.SEV, PlanKind.SVS)
    assert any(
        min(cell.avg_ms[k] for k in ss) < min(cell.avg_ms[k] for k in plain)
        for cell in cells
        if cell.fraction == 0.50
    )
    # (The paper also reports costs falling as |D^Q| shrinks; with bitmap
    # tidsets the record-level check costs O(|D|/64) regardless of |D^Q|,
    # so that trend does not transfer — see EXPERIMENTS.md.)
