"""FIG13 — fresh-local vs repeated-global closed frequent itemsets.

Paper: Figure 13: for focal sizes 1/10/20/50%, the average number of
locally frequent CFIs split into *fresh local* (hidden in the global
context) and *repeated global* — with the majority being fresh, the
Section 5.3 evidence for Simpson's paradox.
"""

from __future__ import annotations

import numpy as np

from _harness import RESULTS_DIR
from repro.analysis.reporting import format_table, write_csv
from repro.analysis.simpson import compare_itemsets
from repro.workloads.experiments import EXPERIMENTS
from repro.workloads.queries import random_focal_query

FRACTIONS = (0.01, 0.10, 0.20, 0.50)   # the paper's Figure 13 x-axis
QUERIES_PER_CELL = 3


def test_fig13_local_vs_global(benchmark, engines):
    def run():
        table_rows = []
        for name, spec in sorted(EXPERIMENTS.items()):
            engine = engines(name)
            rng = np.random.default_rng(17)
            minsupp = spec.minsupps[0]
            for fraction in FRACTIONS:
                fresh, repeated = [], []
                for _ in range(QUERIES_PER_CELL):
                    workload = random_focal_query(
                        engine.table, fraction, minsupp, 0.85, rng
                    )
                    split = compare_itemsets(engine.index, workload.query)
                    fresh.append(split.n_fresh)
                    repeated.append(split.n_repeated)
                table_rows.append(
                    [name, f"{fraction:.0%}", f"{minsupp:.2f}",
                     float(np.mean(fresh)), float(np.mean(repeated))]
                )
        return table_rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = ["dataset", "|D^Q|/|D|", "minsupp",
               "avg fresh-local CFIs", "avg repeated-global CFIs"]
    print("\nFIG13 — average local vs global closed frequent itemsets "
          "(paper: majority are fresh local — Simpson's paradox)")
    print(format_table(headers, rows))
    write_csv(RESULTS_DIR / "fig13_local_vs_global.csv", headers, rows)

    # Shape check: fresh local itemsets dominate for every dataset at some
    # focal size (the paper's headline Section 5.3 finding).
    by_dataset: dict[str, bool] = {}
    for name, _frac, _ms, fresh, repeated in rows:
        if fresh > repeated:
            by_dataset[name] = True
    assert set(by_dataset) == set(EXPERIMENTS)
