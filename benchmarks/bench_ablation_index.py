"""ABL — ablations of the design choices DESIGN.md calls out.

Not a paper figure: quantifies the individual contributions of

* the R-tree bulk-loading method (Hilbert vs STR vs one-by-one inserts),
* the R-tree fanout (max entries per node),
* the supported R-tree filter (SS vs plain S search),
* the expansion mode (closed-itemset rules vs all-frequent rules).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _harness import RESULTS_DIR
from repro.analysis.reporting import format_table, write_csv
from repro.core.mipindex import build_mip_index
from repro.core.operators import make_context, op_search, op_supported_search
from repro.core.plans import PlanKind, execute_plan
from repro.dataset.synthetic import chess_like
from repro.rtree.rtree import RTree
from repro.workloads.queries import random_focal_query


@pytest.fixture(scope="module")
def table():
    return chess_like(n_records=800, seed=7)


@pytest.mark.parametrize("packing", ["hilbert", "str"])
def test_ablation_index_build(benchmark, table, packing):
    index = benchmark.pedantic(
        build_mip_index,
        args=(table, 0.10),
        kwargs={"packing": packing},
        rounds=2, iterations=1,
    )
    assert index.n_mips > 0


def test_ablation_packed_vs_dynamic_search(benchmark, table):
    """Packed trees should search no worse than insertion-built trees."""

    def run():
        index = build_mip_index(table, 0.10, packing="hilbert")
        dynamic = RTree(n_dims=table.n_attributes,
                        max_entries=index.rtree.tree.max_entries)
        for mip in index.mips:
            dynamic.insert(mip.box, mip, mip.global_count)

        rng = np.random.default_rng(3)
        packed_nodes = dynamic_nodes = 0
        for _ in range(30):
            workload = random_focal_query(table, 0.2, 0.4, 0.85, rng)
            hull = workload.query.focal_range(index.cardinalities).hull()
            packed_nodes += index.rtree.search(hull).nodes_visited
            dynamic_nodes += dynamic.search(hull).nodes_visited
        return packed_nodes, dynamic_nodes

    packed_nodes, dynamic_nodes = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    print(f"\nABL — node accesses over 30 queries: packed={packed_nodes}, "
          f"dynamic={dynamic_nodes}")
    assert packed_nodes <= dynamic_nodes * 1.2


def test_ablation_rstar_vs_quadratic(benchmark, table):
    """Dynamic-tree quality: R* heuristics vs Guttman quadratic split."""
    from repro.rtree.rstar import RStarTree

    def run():
        index = build_mip_index(table, 0.10)
        quadratic = RTree(n_dims=table.n_attributes, max_entries=8)
        rstar = RStarTree(n_dims=table.n_attributes, max_entries=8)
        for mip in index.mips:
            quadratic.insert(mip.box, mip, mip.global_count)
            rstar.insert(mip.box, mip, mip.global_count)
        rng = np.random.default_rng(21)
        q_nodes = r_nodes = 0
        for _ in range(30):
            workload = random_focal_query(table, 0.2, 0.4, 0.85, rng)
            hull = workload.query.focal_range(index.cardinalities).hull()
            q_nodes += quadratic.search(hull).nodes_visited
            r_nodes += rstar.search(hull).nodes_visited
        return q_nodes, r_nodes

    q_nodes, r_nodes = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nABL — node accesses over 30 queries: quadratic={q_nodes}, "
          f"rstar={r_nodes}")
    assert r_nodes <= q_nodes * 1.2


@pytest.mark.parametrize("max_entries", [4, 8, 32])
def test_ablation_fanout(benchmark, table, max_entries):
    """Fanout trades tree depth against per-node scan width."""
    index = build_mip_index(table, 0.10, max_entries=max_entries)
    rng = np.random.default_rng(5)
    workload = random_focal_query(table, 0.2, 0.4, 0.85, rng)

    result = benchmark.pedantic(
        execute_plan, args=(PlanKind.SSEV, index, workload.query),
        rounds=3, iterations=1,
    )
    assert result.n_rules >= 0


def test_ablation_supported_filter(benchmark, table):
    """SS vs S: candidate reduction and node accesses at high minsupp."""

    def run():
        index = build_mip_index(table, 0.10)
        rng = np.random.default_rng(9)
        rows = []
        for minsupp in (0.3, 0.45, 0.6):
            workload = random_focal_query(table, 0.5, minsupp, 0.85, rng)
            ctx_s = make_context(index, workload.query)
            plain = op_search(ctx_s)
            ctx_ss = make_context(index, workload.query)
            filtered = op_supported_search(ctx_ss)
            rows.append(
                [
                    f"{minsupp:.2f}",
                    len(plain),
                    len(filtered),
                    ctx_s.trace.by_name("SEARCH").detail["nodes_visited"],
                    ctx_ss.trace.by_name(
                        "SUPPORTED-SEARCH").detail["nodes_visited"],
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["minsupp", "S candidates", "SS candidates", "S nodes",
               "SS nodes"]
    print("\nABL — supported R-tree filter effect (|D^Q| = 50%)")
    print(format_table(headers, rows))
    write_csv(RESULTS_DIR / "ablation_supported_filter.csv", headers, rows)
    for _, plain, filtered, nodes_s, nodes_ss in rows:
        assert filtered <= plain
        assert nodes_ss <= nodes_s


def test_ablation_expand_mode(benchmark, table):
    """Expansion cost: all-frequent rules vs closed-itemset rules."""

    def run():
        index = build_mip_index(table, 0.10)
        rng = np.random.default_rng(13)
        workload = random_focal_query(table, 0.2, 0.5, 0.85, rng)
        t0 = time.perf_counter()
        closed = execute_plan(PlanKind.SSEV, index, workload.query)
        t_closed = time.perf_counter() - t0
        t0 = time.perf_counter()
        expanded = execute_plan(PlanKind.SSEV, index, workload.query,
                                expand=True)
        t_expanded = time.perf_counter() - t0
        return closed.n_rules, t_closed, expanded.n_rules, t_expanded

    n_closed, t_closed, n_expanded, t_expanded = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\nABL — expand mode: closed rules={n_closed} ({t_closed*1e3:.1f} ms) "
          f"vs expanded rules={n_expanded} ({t_expanded*1e3:.1f} ms)")
    assert n_expanded >= n_closed
