"""ACC — COLARM plan-selection accuracy (Section 5.1).

Paper: over 108 scenarios (3 datasets x 36 parameter settings: 4 focal
sizes x 3 minsupp x 3 minconf) the optimizer picks the most efficient plan
in all but 3 cases (>93% accuracy) and pays at most ~5% extra when wrong.

This bench reruns the full 108-scenario experiment and reports strict
accuracy, tolerance-based accuracy (picks within 15% of the fastest plan
count as ties — sub-noise differences), and regret statistics.
"""

from __future__ import annotations

from _harness import RESULTS_DIR, run_accuracy, summarize_accuracy
from repro.analysis.reporting import format_table, write_csv
from repro.workloads.experiments import EXPERIMENTS, FOCAL_FRACTIONS


def test_optimizer_accuracy_108_scenarios(benchmark, engines):
    def run():
        per_dataset = {}
        for name, spec in sorted(EXPERIMENTS.items()):
            per_dataset[name] = run_accuracy(
                engines(name), spec, FOCAL_FRACTIONS
            )
        return per_dataset

    per_dataset = benchmark.pedantic(run, rounds=1, iterations=1)

    all_records = [r for records in per_dataset.values() for r in records]
    rows = []
    for name, records in per_dataset.items():
        summary = summarize_accuracy(records)
        rows.append(
            [
                name,
                summary["n"],
                f"{summary['strict_accuracy']:.0%}",
                f"{summary['tolerant_accuracy']:.0%}",
                f"{summary['mean_regret_when_wrong']:.1%}",
                f"{summary['max_regret']:.1%}",
            ]
        )
    overall = summarize_accuracy(all_records)
    rows.append(
        [
            "OVERALL",
            overall["n"],
            f"{overall['strict_accuracy']:.0%}",
            f"{overall['tolerant_accuracy']:.0%}",
            f"{overall['mean_regret_when_wrong']:.1%}",
            f"{overall['max_regret']:.1%}",
        ]
    )
    headers = ["dataset", "scenarios", "strict acc", "acc (15% tie)",
               "mean regret when wrong", "max regret"]
    print("\nACC — optimizer plan-selection accuracy "
          "(paper: >93% over 108 scenarios, <=5% extra cost when wrong)")
    print(format_table(headers, rows))
    write_csv(RESULTS_DIR / "optimizer_accuracy.csv", headers, rows)

    detail_rows = [
        [name, r.fraction, r.minsupp, r.minconf, r.chosen.value,
         r.fastest.value, f"{r.regret:.3f}"]
        for name, records in per_dataset.items()
        for r in records
    ]
    write_csv(
        RESULTS_DIR / "optimizer_accuracy_detail.csv",
        ["dataset", "fraction", "minsupp", "minconf", "chosen", "fastest",
         "regret"],
        detail_rows,
    )

    assert overall["n"] == 108
    # Reproduction targets: the tolerance-based accuracy should reach the
    # paper's ballpark, and wrong picks must stay near-optimal on average —
    # looser than the paper's 93%/5% because millisecond-scale Python
    # timings make near-ties far noisier than 100+-second C++ runs
    # (EXPERIMENTS.md discusses the gap).
    assert overall["tolerant_accuracy"] >= 0.70
    assert overall["mean_regret_when_wrong"] <= 1.0
