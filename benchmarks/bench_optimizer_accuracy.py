"""ACC — COLARM plan-selection accuracy (Section 5.1).

Paper: over 108 scenarios (3 datasets x 36 parameter settings: 4 focal
sizes x 3 minsupp x 3 minconf) the optimizer picks the most efficient plan
in all but 3 cases (>93% accuracy) and pays at most ~5% extra when wrong.

This bench reruns the full 108-scenario experiment and reports strict
accuracy, tolerance-based accuracy (picks within 15% of the fastest plan
count as ties — sub-noise differences), and regret statistics.
"""

from __future__ import annotations

from _harness import RESULTS_DIR, run_accuracy, summarize_accuracy
from repro.analysis.reporting import format_table, write_csv
from repro.workloads.experiments import EXPERIMENTS, FOCAL_FRACTIONS


def test_optimizer_accuracy_108_scenarios(benchmark, engines):
    def run():
        per_dataset = {}
        for name, spec in sorted(EXPERIMENTS.items()):
            engine = engines(name)
            engine.optimizer.residuals.clear()
            per_dataset[name] = run_accuracy(engine, spec, FOCAL_FRACTIONS)
        return per_dataset

    per_dataset = benchmark.pedantic(run, rounds=1, iterations=1)

    all_records = [r for records in per_dataset.values() for r in records]
    rows = []
    for name, records in per_dataset.items():
        summary = summarize_accuracy(records)
        rows.append(
            [
                name,
                summary["n"],
                f"{summary['strict_accuracy']:.0%}",
                f"{summary['tolerant_accuracy']:.0%}",
                f"{summary['extra_cost']:.1%}",
                f"{summary['mean_regret_when_wrong']:.1%}",
                f"{summary['max_regret']:.1%}",
            ]
        )
    overall = summarize_accuracy(all_records)
    rows.append(
        [
            "OVERALL",
            overall["n"],
            f"{overall['strict_accuracy']:.0%}",
            f"{overall['tolerant_accuracy']:.0%}",
            f"{overall['extra_cost']:.1%}",
            f"{overall['mean_regret_when_wrong']:.1%}",
            f"{overall['max_regret']:.1%}",
        ]
    )
    headers = ["dataset", "scenarios", "strict acc", "acc (15% tie)",
               "extra cost", "mean regret when wrong", "max regret"]
    print("\nACC — optimizer plan-selection accuracy "
          "(paper: >93% over 108 scenarios, <=5% extra cost when wrong)")
    print(format_table(headers, rows))
    write_csv(RESULTS_DIR / "optimizer_accuracy.csv", headers, rows)

    detail_rows = [
        [name, r.fraction, r.minsupp, r.minconf, r.chosen.value,
         r.fastest.value, f"{r.regret:.3f}"]
        for name, records in per_dataset.items()
        for r in records
    ]
    write_csv(
        RESULTS_DIR / "optimizer_accuracy_detail.csv",
        ["dataset", "fraction", "minsupp", "minconf", "chosen", "fastest",
         "regret"],
        detail_rows,
    )

    # Per-plan estimate-vs-actual residuals (log(estimated / measured)):
    # which cost formula drifts, and by how much, behind the numbers above.
    residual_rows = []
    for name in sorted(EXPERIMENTS):
        for kind, stats in engines(name).optimizer.residual_summary().items():
            residual_rows.append(
                [name, kind.value, int(stats["n"]),
                 f"{stats['median_log_ratio']:+.2f}",
                 f"{stats['mean_abs_log_ratio']:.2f}"]
            )
    print("\nper-plan residuals: log(estimated / measured), 0 = perfect")
    print(format_table(
        ["dataset", "plan", "n", "median", "mean |.|"], residual_rows
    ))
    write_csv(
        RESULTS_DIR / "optimizer_accuracy_residuals.csv",
        ["dataset", "plan", "n", "median_log_ratio", "mean_abs_log_ratio"],
        residual_rows,
    )

    assert overall["n"] == 108
    # Reproduction targets: the tolerance-based accuracy should reach the
    # paper's ballpark, and the optimizer's picks must stay within a
    # bounded multiple of the oracle.  ``extra_cost`` is the time-weighted
    # form of the paper's "<=5% extra cost" claim — total chosen time over
    # total oracle time — and the metric that stays meaningful as the
    # plans themselves get faster (the per-scenario relative-regret mean
    # over-weights millisecond scenarios and inflates mechanically when
    # denominators shrink; it is reported above as a diagnostic, not
    # gated).  The density-aware ARM model (measured F1/F2/F3, quasi-
    # clique moment fit, chain-depth truncation and the per-candidate
    # overhead term in arm_load) closed the old clique-series gap that
    # used to underprice dense mushroom-like focal subsets by orders of
    # magnitude: overall extra cost dropped from ~1.8x to ~0.3-0.45x
    # across runs on the same machine, and the focal-projected
    # rule-generation kernels (with GC-paused timing, the fixed-overhead
    # ``rulegen_load`` term and the Frechet/independence local-count
    # blend) took it to ~0.05-0.10 — at last inside the paper's claimed
    # band.  The same speedup compressed the gap between the top plans
    # below millisecond timing noise in most scenarios (the fastest and
    # runner-up are now within the 15% tie band for the large majority of
    # the grid), so *strict* accuracy degraded from ~0.70 to ~0.32-0.36:
    # it now mostly measures which side of a coin-flip tie the noise
    # landed on.  Its floor is therefore set below the observed plateau
    # as a sanity bound, while the meaningful gates — tolerance-based
    # accuracy and extra cost — are kept, the latter tightened 0.5 ->
    # 0.25 (2.5-3x margin over the observed 0.05-0.10).  Millisecond-
    # scale Python timings make near-ties far noisier than the paper's
    # 100+-second C++ runs (EXPERIMENTS.md discusses the gap);
    # ``tools/ci_gates.py`` enforces thresholds from ``ci_gates.json`` on
    # a reduced subset in CI.
    assert overall["strict_accuracy"] >= 0.25
    assert overall["tolerant_accuracy"] >= 0.72
    assert overall["extra_cost"] <= 0.25
