"""CACHE — warm materialized-cache hits vs the best serial plan.

Models the workload the cache tier exists for: an analyst (or a serving
endpoint) firing a *Zipf-distributed repeated-query stream* over a pool
of distinct focal queries — a few hot regions absorb most requests, a
long tail is touched once or twice.  Per distinct query the bench
measures:

* **cold** — every plan executed fresh (``compare_plans`` under a paused
  collector); the baseline is the *best* serial plan, i.e. the oracle a
  perfect optimizer could reach without materialization;
* **warm** — ``engine.query`` with the cache enabled and populated: the
  optimizer probes the cache, prices the CACHE variant, and serves the
  materialized result.

Every warm serve is asserted **byte-identical** to the cold execution of
the same plan family before it is timed, and every request's
choice-vs-measured outcome is fed back through
``optimizer.record_measurement`` so the ledger reports how often the
CACHE pick was actually the measured winner.  The acceptance bar is a
>= 5x geometric-mean speedup of warm hit latency over the best serial
plan.  Results land in ``benchmarks/results/cache_speedup.csv`` plus the
top-level ``BENCH_cache.json``.  Run as a pytest test or directly::

    PYTHONPATH=src python benchmarks/bench_cache.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.core.plans import PlanKind
from repro.workloads.experiments import EXPERIMENTS
from repro.workloads.queries import random_focal_query

from _harness import BENCH_SMOKE, build_engine, paused_gc, smoke_grid

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_cache.json"

DATASETS = smoke_grid(("chess", "mushroom"), ("mushroom",))
#: Distinct focal queries in the pool and total Zipf-drawn requests.
N_DISTINCT = smoke_grid(10, 5)
N_REQUESTS = smoke_grid(50, 20)
#: Zipf rank exponent: rank-k query drawn with p ∝ 1/k**ZIPF_S.
ZIPF_S = 1.1
FRACTIONS = (0.5, 0.3, 0.1)
REPEATS = 3


def _zipf_ranks(n_items: int, n_draws: int, rng) -> np.ndarray:
    weights = 1.0 / np.arange(1, n_items + 1) ** ZIPF_S
    return rng.choice(n_items, size=n_draws, p=weights / weights.sum())


def _query_pool(spec, table, seed: int):
    """``N_DISTINCT`` distinct focal queries crossing the spec's grids."""
    pool = []
    seen = set()
    k = 0
    while len(pool) < N_DISTINCT:
        rng = np.random.default_rng(seed * 1000 + k)
        k += 1
        wq = random_focal_query(
            table,
            FRACTIONS[k % len(FRACTIONS)],
            spec.minsupps[k % len(spec.minsupps)],
            spec.minconfs[k % len(spec.minconfs)],
            rng,
        )
        if wq.query not in seen:
            seen.add(wq.query)
            pool.append(wq.query)
    return pool


def run_bench(seed: int = 9) -> dict:
    records: list[dict] = []
    ledgers: dict[str, dict] = {}
    for di, dataset in enumerate(DATASETS):
        spec = EXPERIMENTS[dataset]
        engine = build_engine(spec)
        pool = _query_pool(spec, engine.table, seed + di)

        # Cold baselines: every plan fresh, best serial time per query.
        cold = []
        for q in pool:
            with paused_gc():
                results = engine.compare_plans(q)
            best_kind = min(results, key=lambda k: results[k].elapsed)
            cold.append({
                "best_s": results[best_kind].elapsed,
                "best_plan": best_kind,
                "mip_rules": results[PlanKind.SSVS].rules,
                "arm_rules": results[PlanKind.ARM].rules,
                "dq_size": results[best_kind].dq_size,
            })

        # Warm phase: enable + populate, then serve the Zipf stream.
        engine.enable_cache()
        for q in pool:
            outcome = engine.query(q)
            assert not outcome.cached  # first touch is always a miss
        rng = np.random.default_rng(seed + 77 + di)
        ranks = _zipf_ranks(len(pool), N_REQUESTS, rng)
        warm_best = [float("inf")] * len(pool)
        n_cached_picks = 0
        n_cached_wins = 0
        for qi in ranks:
            q = pool[qi]
            with paused_gc():
                start = time.perf_counter()
                outcome = engine.query(q)
                elapsed = time.perf_counter() - start
            # Byte-identical to the cold execution of the same family —
            # the bar is exactness, not approximation.
            expected = (
                cold[qi]["arm_rules"]
                if outcome.plan is PlanKind.ARM
                else cold[qi]["mip_rules"]
            )
            assert outcome.rules == expected, (
                f"cache served diverging rules: {dataset} query {qi}"
            )
            assert outcome.cached, (
                f"warm repeat not served from cache: {dataset} query {qi}"
            )
            engine.optimizer.record_measurement(
                outcome.choice, outcome.plan, elapsed, cached=outcome.cached
            )
            n_cached_picks += 1
            if elapsed < cold[qi]["best_s"]:
                n_cached_wins += 1
            warm_best[qi] = min(warm_best[qi], elapsed)

        for qi, q in enumerate(pool):
            if not np.isfinite(warm_best[qi]):
                continue  # tail query never drawn by the Zipf stream
            records.append({
                "dataset": dataset,
                "minsupp": q.minsupp,
                "minconf": q.minconf,
                "dq_size": cold[qi]["dq_size"],
                "n_rules": len(cold[qi]["mip_rules"]),
                "cold_best_plan": cold[qi]["best_plan"].value,
                "cold_best_s": cold[qi]["best_s"],
                "warm_hit_s": warm_best[qi],
                "speedup": cold[qi]["best_s"] / warm_best[qi],
            })
        ledgers[dataset] = {
            "cache_ledger": dict(engine.optimizer.cache_ledger),
            "cache_stats": engine.cache.stats.as_dict(),
            "requests": int(N_REQUESTS),
            "cached_picks": n_cached_picks,
            "cached_pick_measured_wins": n_cached_wins,
            "choice_vs_measured_agreement": (
                n_cached_wins / n_cached_picks if n_cached_picks else 0.0
            ),
            "cached_residuals": {
                kind.value: stats
                for kind, stats in engine.optimizer.residual_summary().items()
            },
        }
    return {"series": records, "ledgers": ledgers}


def _geomean(values) -> float:
    return float(np.exp(np.mean(np.log(values))))


def write_results(out: dict) -> None:
    records = out["series"]
    headers = ["dataset", "minsupp", "minconf", "dq_size", "n_rules",
               "cold_plan", "cold_ms", "warm_ms", "speedup"]
    rows = [
        [r["dataset"], r["minsupp"], r["minconf"], r["dq_size"], r["n_rules"],
         r["cold_best_plan"], f"{r['cold_best_s'] * 1e3:.2f}",
         f"{r['warm_hit_s'] * 1e3:.3f}", f"{r['speedup']:.1f}x"]
        for r in records
    ]
    print("\nCACHE — warm materialized-cache hits vs the best serial plan")
    print(format_table(headers, rows))
    for dataset in DATASETS:
        cells = [r["speedup"] for r in records if r["dataset"] == dataset]
        ledger = out["ledgers"][dataset]
        print(
            f"  {dataset}: geomean {_geomean(cells):.1f}x over {len(cells)} "
            f"hot queries; agreement "
            f"{ledger['choice_vs_measured_agreement']:.2f} "
            f"({ledger['cached_pick_measured_wins']}/"
            f"{ledger['cached_picks']} cached picks measured fastest)"
        )
    write_csv(RESULTS_DIR / "cache_speedup.csv", headers, rows)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "cache",
                "numpy": np.__version__,
                "zipf_s": ZIPF_S,
                "n_distinct": N_DISTINCT,
                "n_requests": N_REQUESTS,
                "smoke": BENCH_SMOKE,
                "series": records,
                "ledgers": out["ledgers"],
            },
            indent=2,
        )
        + "\n"
    )


def test_cache_speedup():
    out = run_bench()
    write_results(out)
    # Acceptance bar: warm cache-hit latency >= 5x faster than the best
    # serial plan per dataset (geometric mean over the hot queries of the
    # Zipf stream; byte-identical serves asserted per request above).
    for dataset in DATASETS:
        cells = [r["speedup"] for r in out["series"] if r["dataset"] == dataset]
        assert cells, f"no cells for {dataset}"
        geomean = _geomean(cells)
        assert geomean >= 5.0, (
            f"warm cache speedup {geomean:.2f}x < 5x on {dataset}"
        )
    # The optimizer's CACHE picks must also be measured winners nearly
    # always — a cache that "wins" on estimates but loses on the clock
    # would gate here.
    for dataset, ledger in out["ledgers"].items():
        assert ledger["choice_vs_measured_agreement"] >= 0.9, (
            f"cache choice-vs-measured agreement "
            f"{ledger['choice_vs_measured_agreement']:.2f} < 0.9 on {dataset}"
        )


if __name__ == "__main__":
    write_results(run_bench())
