"""FIG10 — average CPU cost of the six mining plans, mushroom dataset.

Paper: Figure 10 — same grid as Figure 9 over the mushroom data (bi-modal
closed-itemset length distribution).
"""

from __future__ import annotations

import pytest

from _harness import GRID_HEADERS, RESULTS_DIR, grid_rows, run_grid
from repro.analysis.reporting import format_table, write_csv
from repro.core.plans import PlanKind, execute_plan
from repro.workloads.experiments import EXPERIMENTS, FOCAL_FRACTIONS
from repro.workloads.queries import random_focal_query

NAME = "mushroom"


@pytest.mark.parametrize("kind", list(PlanKind), ids=lambda k: k.value)
def test_fig10_plan_cells(benchmark, engines, kind):
    import numpy as np

    engine = engines(NAME)
    spec = EXPERIMENTS[NAME]
    workload = random_focal_query(
        engine.table, 0.2, spec.minsupps[1], 0.85, np.random.default_rng(29),
    )
    result = benchmark.pedantic(
        execute_plan, args=(kind, engine.index, workload.query),
        rounds=3, iterations=1,
    )
    assert result.kind is kind


def test_fig10_grid(benchmark, engines):
    engine = engines(NAME)
    spec = EXPERIMENTS[NAME]
    cells = benchmark.pedantic(
        run_grid, args=(engine, spec, FOCAL_FRACTIONS),
        rounds=1, iterations=1,
    )
    rows = grid_rows(cells)
    print("\nFIG10 — avg plan execution time (ms), mushroom, minconf=85%")
    print(format_table(GRID_HEADERS, rows))
    write_csv(RESULTS_DIR / "fig10_mushroom.csv", GRID_HEADERS, rows)

    # A MIP-index plan beats ARM somewhere on the grid (the paper's
    # headline for mushroom) and the supported filter pays off at the
    # largest focal size; the |D^Q|-monotonicity of the paper does not
    # transfer to bitmap tidsets (EXPERIMENTS.md).
    assert any(cell.fastest is not PlanKind.ARM for cell in cells)
    ss = (PlanKind.SSEUV, PlanKind.SSVS, PlanKind.SSEV)
    plain = (PlanKind.SEV, PlanKind.SVS)
    assert any(
        min(cell.avg_ms[k] for k in ss) < min(cell.avg_ms[k] for k in plain)
        for cell in cells
        if cell.fraction == 0.50
    )
