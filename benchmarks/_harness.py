"""Shared machinery for the figure-regeneration benchmarks.

Each ``bench_fig*.py`` file regenerates one evaluation artifact of the
paper (see DESIGN.md's experiment index).  This module holds the pieces
they share: engine construction with calibration, the per-figure grid
runner (plans x focal sizes x minsupp), and result persistence under
``benchmarks/results/``.
"""

from __future__ import annotations

import contextlib
import gc
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.engine import Colarm
from repro.core.plans import PlanKind
from repro.workloads.experiments import ExperimentSpec
from repro.workloads.queries import random_focal_query

RESULTS_DIR = Path(__file__).parent / "results"

#: CI smoke mode: ``COLARM_BENCH_SMOKE=1`` shrinks the benchmark grids so
#: the perf benches finish in seconds while still exercising at least one
#: gate-eligible size (the speedup acceptance bars stay enforced).
BENCH_SMOKE = os.environ.get("COLARM_BENCH_SMOKE", "0") not in ("", "0")


def smoke_grid(full, smoke):
    """Pick the smoke-sized variant of a benchmark grid when in smoke mode."""
    return smoke if BENCH_SMOKE else full


@contextlib.contextmanager
def paused_gc():
    """Collect once, then pause the cyclic collector for a timed region.

    Rule extraction materializes 10^5-scale ``Rule`` objects per plan
    execution; collector pauses triggered mid-plan add up to 2-3x
    run-to-run jitter on individual plan timings, which randomizes
    which near-tie plan "wins" a scenario.  Pausing the collector (and
    paying one collection up front so the timed region starts clean)
    measures the plans, not the collector."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()

#: Plan display order used throughout the figures (mirrors the paper's keys).
PLAN_ORDER = (
    PlanKind.SSEUV, PlanKind.SSVS, PlanKind.SSEV,
    PlanKind.SVS, PlanKind.SEV, PlanKind.ARM,
)


def build_engine(spec: ExperimentSpec, n_probes: int = 10, seed: int = 1) -> Colarm:
    """Offline phase for one benchmark dataset: index build + calibration."""
    engine = Colarm(spec.make_table(), primary_support=spec.primary_support)
    engine.calibrate(n_probes=n_probes, seed=seed)
    return engine


@dataclass
class GridCell:
    """One (focal fraction, minsupp) cell of a figure-9/10/11 chart."""

    fraction: float
    minsupp: float
    avg_dq_size: float
    avg_ms: dict[PlanKind, float]     # average execution time per plan
    chosen: PlanKind                   # optimizer's majority choice
    fastest: PlanKind                  # measured-best plan (on averages)


def run_grid(
    engine: Colarm,
    spec: ExperimentSpec,
    fractions: tuple[float, ...],
    minconf: float = 0.85,
    queries_per_setting: int = 2,
    seed: int = 5,
) -> list[GridCell]:
    """The Figures 9-11 experiment: avg plan times over random regions.

    For each cell, ``queries_per_setting`` random focal subsets of the
    target size are executed with all six plans; times are averaged and
    the optimizer's majority choice recorded — exactly the methodology of
    Section 5.1.
    """
    rng = np.random.default_rng(seed)
    cells: list[GridCell] = []
    for fraction in fractions:
        for minsupp in spec.minsupps:
            totals = {kind: 0.0 for kind in PlanKind}
            votes: dict[PlanKind, int] = {}
            dq_sizes = []
            for _ in range(queries_per_setting):
                workload = random_focal_query(
                    engine.table, fraction, minsupp, minconf, rng
                )
                dq_sizes.append(workload.dq_size)
                with paused_gc():
                    results = engine.compare_plans(workload.query)
                for kind, result in results.items():
                    totals[kind] += result.elapsed
                pick = engine.choose_plan(workload.query).kind
                votes[pick] = votes.get(pick, 0) + 1
            avg_ms = {
                kind: totals[kind] / queries_per_setting * 1000.0
                for kind in PlanKind
            }
            cells.append(
                GridCell(
                    fraction=fraction,
                    minsupp=minsupp,
                    avg_dq_size=float(np.mean(dq_sizes)),
                    avg_ms=avg_ms,
                    chosen=max(votes, key=lambda k: votes[k]),
                    fastest=min(avg_ms, key=lambda k: avg_ms[k]),
                )
            )
    return cells


def grid_rows(cells: list[GridCell]) -> list[list[object]]:
    """Flatten grid cells into printable/CSV rows (one row per plan)."""
    rows: list[list[object]] = []
    for cell in cells:
        for kind in PLAN_ORDER:
            rows.append(
                [
                    f"{cell.fraction:.0%}",
                    f"{cell.minsupp:.2f}",
                    f"{cell.avg_dq_size:.0f}",
                    kind.value,
                    f"{cell.avg_ms[kind]:.1f}",
                    "<-- chosen" if kind is cell.chosen else "",
                    "fastest" if kind is cell.fastest else "",
                ]
            )
    return rows


GRID_HEADERS = ["|D^Q|/|D|", "minsupp", "avg |D^Q|", "plan", "avg ms",
                "optimizer", "measured"]


@dataclass
class AccuracyRecord:
    """One Section 5.1 scenario: parameters, choice, truth, regret."""

    fraction: float
    minsupp: float
    minconf: float
    chosen: PlanKind
    fastest: PlanKind
    regret: float  # chosen time / fastest time - 1
    chosen_s: float = 0.0   # measured time of the chosen plan (paired median)
    fastest_s: float = 0.0  # measured time of the fastest plan (paired median)


def run_accuracy(
    engine: Colarm,
    spec: ExperimentSpec,
    fractions: tuple[float, ...],
    seed: int = 11,
    repetitions: int = 3,
) -> list[AccuracyRecord]:
    """The 36-setting plan-selection accuracy experiment for one dataset.

    Plan timings are *paired*: each repetition executes all six plans
    back-to-back (so every plan in a repetition sees the same machine
    state — cache warmth, frequency, background load), and a plan's time
    for the scenario is its **median across repetitions**.  Summing or
    averaging instead lets one slow repetition — a page-cache miss, a
    CPU-frequency dip — decide which plan "won" a near-tie scenario; the
    per-pair median discards exactly those outliers.

    Every measured plan execution is also fed back through
    :meth:`ColarmOptimizer.record_measurement`, so after a run
    ``engine.optimizer.residual_summary()`` reports the per-plan
    estimate-vs-actual bias/spread behind the accuracy numbers.
    """
    rng = np.random.default_rng(seed)
    records: list[AccuracyRecord] = []
    for fraction in fractions:
        for minsupp in spec.minsupps:
            for minconf in spec.minconfs:
                workload = random_focal_query(
                    engine.table, fraction, minsupp, minconf, rng
                )
                rep_times: dict[PlanKind, list[float]] = {
                    kind: [] for kind in PlanKind
                }
                for _ in range(repetitions):
                    with paused_gc():
                        results = engine.compare_plans(workload.query)
                    for kind, r in results.items():
                        rep_times[kind].append(r.elapsed)
                times = {
                    kind: float(np.median(rep_times[kind]))
                    for kind in PlanKind
                }
                fastest = min(times, key=lambda k: times[k])
                choice = engine.choose_plan(workload.query)
                chosen = choice.kind
                for kind in PlanKind:
                    engine.optimizer.record_measurement(
                        choice, kind, times[kind]
                    )
                records.append(
                    AccuracyRecord(
                        fraction=fraction,
                        minsupp=minsupp,
                        minconf=minconf,
                        chosen=chosen,
                        fastest=fastest,
                        regret=times[chosen] / times[fastest] - 1.0,
                        chosen_s=times[chosen],
                        fastest_s=times[fastest],
                    )
                )
    return records


def summarize_accuracy(records: list[AccuracyRecord],
                       tie_tolerance: float = 0.15) -> dict[str, float]:
    """Accuracy (strict and tolerance-based) plus regret statistics.

    ``tie_tolerance`` counts a pick as correct when it lands within that
    relative margin of the fastest plan — plans separated by less than
    timing noise are interchangeable in practice.
    """
    n = len(records)
    strict = sum(1 for r in records if r.chosen is r.fastest)
    tolerant = sum(1 for r in records if r.regret <= tie_tolerance)
    regrets = [r.regret for r in records if r.chosen is not r.fastest]
    # The paper's Section 5.1 claim is about *extra cost* — total time the
    # chosen plans spent beyond the oracle's total, a time-weighted
    # aggregate.  The per-scenario relative-regret mean over-weights
    # millisecond scenarios (a 5 ms miss against a 1 ms oracle is 4.0
    # regret but negligible cost), and it inflates mechanically whenever
    # plans get uniformly faster, because denominators shrink while
    # absolute noise does not.
    chosen_total = sum(r.chosen_s for r in records)
    fastest_total = sum(r.fastest_s for r in records)
    return {
        "n": n,
        "strict_accuracy": strict / n if n else 0.0,
        "tolerant_accuracy": tolerant / n if n else 0.0,
        "mean_regret_when_wrong": float(np.mean(regrets)) if regrets else 0.0,
        "max_regret": max((r.regret for r in records), default=0.0),
        "extra_cost": (
            chosen_total / fastest_total - 1.0 if fastest_total else 0.0
        ),
    }
