"""PAR — sharded multi-process kernels vs the serial in-process path.

Measures the two record-partitioned hot-path kernels of
:mod:`repro.parallel` over shard-count sweeps ``P ∈ {1, 2, 4, 8}``:

* ``qualify_sharded`` — ELIMINATE/SUPPORTED-VERIFY's batched MIP
  qualification (AND + popcount over the packed candidate matrix),
  dispatched as one word-shard task per worker and merged by int64 sum;
* ``lattice_sharded`` — the rule-generation subset-lattice kernel,
  evaluated over full-width shards of the item matrix.

Matrices are chess/mushroom/pumsb-shaped (their tidset densities) at
``>= 50k`` records; every cell asserts the sharded counts are
**byte-identical** to the serial result before timing anything.  A third
section replays calibration-style scenarios through the optimizer with a
live pool and reports how often its serial/parallel choice agrees with
the measured-faster variant (the ledger records every measurement).

The speedup gate (>= 1.7x at P=4 for qualification on >= 50k records) is
enforced only where the host can deliver 4-way concurrency
(``available_cpus() >= 4``): on smaller containers the sweep still runs
for exactness, and the cost model prices the missing concurrency so the
optimizer never *chooses* sharded there — asserted by the agreement
section instead.  Results land in ``benchmarks/results/
parallel_speedup.csv`` plus the top-level ``BENCH_parallel.json``.  Run
as a pytest test or directly::

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro import kernels
from repro.analysis.reporting import format_table, write_csv
from repro.parallel import (
    ParallelConfig,
    ShardedExecutor,
    available_cpus,
    subset_lattice_partial,
)

from _harness import BENCH_SMOKE, smoke_grid

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_parallel.json"

#: Tidset densities mirroring the evaluation datasets' characters
#: (chess dense, mushroom sparse, pumsb mid) — the AND+popcount work is
#: density-independent, but the merge counts are not.
SHAPES = smoke_grid(
    (("chess", 0.45), ("mushroom", 0.18), ("pumsb", 0.35)),
    (("mushroom", 0.18),),
)
#: Record-universe sizes; the acceptance gate applies at >= 50k.
N_RECORDS = smoke_grid((50_000, 100_000), (50_000,))
#: Candidate-matrix rows for the qualification sweep; the gate reads the
#: cells with >= ``GATE_MIN_CANDIDATES`` rows, where the shard work
#: dwarfs the per-task dispatch overhead.
N_CANDIDATES = smoke_grid((1_024, 4_096, 8_192), (4_096,))
#: Shard counts P.  Smoke mode pins the sweep to the gate point (P=4)
#: plus the P=1 baseline so CI measures exactly what it enforces.
P_GRID = smoke_grid((1, 2, 4, 8), (1, 4))
#: Subset-lattice widths n (2**n counts per itemset; m itemsets).
LATTICE_WIDTHS = smoke_grid((2, 3, 4), (3,))
LATTICE_ITEMSETS = 256
LATTICE_ITEMS = 64
REPEATS = smoke_grid(4, 3)
GATE_MIN_RECORDS = 50_000
GATE_MIN_CANDIDATES = 4_096
GATE_P = 4
GATE_SPEEDUP = 1.7


def _random_matrix(
    rng: np.random.Generator, n_rows: int, n_records: int, density: float
) -> np.ndarray:
    """A packed random tidset matrix at the requested density.

    Generated in row chunks: the full-grid corner (16k rows x 200k
    records) would otherwise materialize a multi-GB float intermediate.
    """
    words = kernels.n_words(n_records)
    matrix = np.zeros((n_rows, words), dtype=kernels._WORD_DTYPE)
    chunk = max(1, min(n_rows, (1 << 27) // max(n_records, 1)))
    for lo in range(0, n_rows, chunk):
        hi = min(lo + chunk, n_rows)
        bits = rng.random((hi - lo, n_records), dtype=np.float32) < density
        packed = np.packbits(bits, axis=1, bitorder="little")
        matrix[lo:hi].view(np.uint8)[:, : packed.shape[1]] = packed
    return matrix


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_qualify(
    executor: ShardedExecutor,
    matrix: np.ndarray,
    mask: np.ndarray,
    n_candidates: int,
    meta: dict,
) -> dict:
    rows = np.arange(n_candidates, dtype=np.int64)
    words = matrix.shape[1]

    def serial():
        return kernels.and_count(matrix, mask)

    def sharded():
        return executor.and_count("m", rows, mask, words)

    # Exactness first: the merged partials must be byte-identical.
    assert np.array_equal(serial().astype(np.int64), sharded())
    serial_s = _best_of(serial)
    sharded_s = _best_of(sharded)
    return {
        "kernel": "qualify_sharded",
        **meta,
        "n_candidates": n_candidates,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s if sharded_s else float("inf"),
    }


def _bench_lattice(
    executor: ShardedExecutor,
    items: np.ndarray,
    mask: np.ndarray,
    width: int,
    rng: np.random.Generator,
    meta: dict,
) -> dict:
    idx = rng.integers(
        0, items.shape[0], size=(LATTICE_ITEMSETS, width)
    ).astype(np.int64)
    words = items.shape[1]

    def serial():
        return subset_lattice_partial(items, idx, mask, 0, words)

    def sharded():
        return executor.subset_lattice("items", idx, mask, words)

    assert np.array_equal(serial(), sharded())
    serial_s = _best_of(serial)
    sharded_s = _best_of(sharded)
    return {
        "kernel": "lattice_sharded",
        **meta,
        "n_candidates": LATTICE_ITEMSETS,
        "width": width,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s if sharded_s else float("inf"),
    }


def run_bench(seed: int = 7) -> list[dict]:
    rng = np.random.default_rng(seed)
    records: list[dict] = []
    for shape, density in SHAPES:
        for n_records in N_RECORDS:
            words = kernels.n_words(n_records)
            matrix = _random_matrix(
                rng, max(N_CANDIDATES), n_records, density
            )
            items = _random_matrix(rng, LATTICE_ITEMS, n_records, density)
            mask = _random_matrix(rng, 1, n_records, 0.5)[0]
            for p in P_GRID:
                executor = ShardedExecutor(
                    {"m": matrix, "items": items},
                    ParallelConfig(n_shards=p),
                )
                try:
                    meta = {
                        "shape": shape,
                        "n_records": n_records,
                        "n_shards": p,
                        "n_workers": executor.n_workers,
                        "words": words,
                    }
                    for n_candidates in N_CANDIDATES:
                        records.append(
                            _bench_qualify(
                                executor,
                                matrix[:n_candidates],
                                mask,
                                n_candidates,
                                meta,
                            )
                        )
                    for width in LATTICE_WIDTHS:
                        records.append(
                            _bench_lattice(
                                executor, items, mask, width, rng, meta
                            )
                        )
                finally:
                    executor.close()
    return records


def run_agreement(seed: int = 5) -> dict:
    """Optimizer serial/parallel choice vs measured-faster, per scenario.

    Replays calibration-style probe queries through an engine with a
    configured pool: for each scenario the optimizer's chosen plan is
    executed both serial and force-sharded, both measurements land in
    the ledger, and the choice *agrees* when it names the measured-faster
    variant (ties within 15% count for either).
    """
    from repro.core.engine import Colarm
    from repro.core.calibration import default_probe_queries
    from repro.core.plans import execute_plan
    from repro.dataset.synthetic import mushroom_like

    engine = Colarm(mushroom_like(n_records=1_600), primary_support=0.08)
    engine.calibrate(n_probes=smoke_grid(6, 4), seed=seed)
    engine.configure(parallel=ParallelConfig(n_shards=4))
    queries = default_probe_queries(
        engine.index, n_queries=smoke_grid(10, 6), seed=seed
    )
    scenarios = []
    try:
        pctx = engine.parallel
        for query in queries:
            choice = engine.optimizer.choose(query)
            serial_s = _best_of(
                lambda: execute_plan(choice.kind, engine.index, query),
                repeats=REPEATS,
            )
            forced = replace(pctx.config, force=True)
            pctx.config = forced
            try:
                sharded_s = _best_of(
                    lambda: execute_plan(
                        choice.kind, engine.index, query, parallel=pctx
                    ),
                    repeats=REPEATS,
                )
            finally:
                pctx.config = replace(forced, force=False)
            engine.optimizer.record_measurement(
                choice, choice.kind, serial_s
            )
            if choice.kind in choice.parallel_estimates:
                engine.optimizer.record_measurement(
                    choice, choice.kind, sharded_s, parallel=True
                )
            faster_parallel = sharded_s < serial_s
            tie = (
                abs(sharded_s - serial_s)
                / max(sharded_s, serial_s, 1e-12)
                <= 0.15
            )
            scenarios.append(
                {
                    "plan": choice.kind.value,
                    "chose_parallel": choice.parallel,
                    "serial_s": serial_s,
                    "sharded_s": sharded_s,
                    "agree": tie or choice.parallel == faster_parallel,
                }
            )
    finally:
        engine.close()
    n_agree = sum(1 for s in scenarios if s["agree"])
    return {
        "n_scenarios": len(scenarios),
        "n_agree": n_agree,
        "agreement": n_agree / len(scenarios) if scenarios else 1.0,
        "scenarios": scenarios,
    }


def write_results(records: list[dict], agreement: dict) -> None:
    headers = ["kernel", "shape", "n_records", "P", "workers", "cands",
               "serial_ms", "sharded_ms", "speedup"]
    rows = [
        [r["kernel"], r["shape"], r["n_records"], r["n_shards"],
         r["n_workers"], r["n_candidates"],
         f"{r['serial_s'] * 1e3:.3f}", f"{r['sharded_s'] * 1e3:.3f}",
         f"{r['speedup']:.2f}x"]
        for r in records
    ]
    print("\nPAR — sharded multi-process kernels vs serial in-process path")
    print(format_table(headers, rows))
    print(
        f"optimizer agreement: {agreement['n_agree']}/"
        f"{agreement['n_scenarios']} scenarios"
    )
    write_csv(RESULTS_DIR / "parallel_speedup.csv", headers, rows)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "parallel",
                "numpy": np.__version__,
                "available_cpus": available_cpus(),
                "repeats": REPEATS,
                "smoke": BENCH_SMOKE,
                "gate": {
                    "p": GATE_P,
                    "min_records": GATE_MIN_RECORDS,
                    "min_candidates": GATE_MIN_CANDIDATES,
                    "min_speedup": GATE_SPEEDUP,
                    "enforced": available_cpus() >= GATE_P,
                },
                "series": records,
                "agreement": agreement,
            },
            indent=2,
        )
        + "\n"
    )


def test_parallel_speedup():
    records = run_bench()
    agreement = run_agreement()
    write_results(records, agreement)
    # Acceptance bar 1: the optimizer's serial/parallel choice matches the
    # measured-faster variant on >= 70% of calibration scenarios — on any
    # host (a single-core box must *choose serial*, and does, because the
    # cost model sees effective_workers=1).
    assert agreement["agreement"] >= 0.7, (
        f"optimizer agreement {agreement['agreement']:.2f} < 0.7"
    )
    # Acceptance bar 2: >= 1.7x sharded qualification at P=4 on >= 50k
    # records (geomean over shapes and the large candidate counts), where
    # the host can actually run 4 workers concurrently.
    if available_cpus() < GATE_P:
        return  # exactness already asserted cell by cell above
    speedups = [
        r["speedup"] for r in records
        if r["kernel"] == "qualify_sharded"
        and r["n_shards"] == GATE_P
        and r["n_records"] >= GATE_MIN_RECORDS
        and r["n_candidates"] >= GATE_MIN_CANDIDATES
    ]
    assert speedups, "no gate-eligible qualification cells"
    geomean = float(np.exp(np.mean(np.log(speedups))))
    assert geomean >= GATE_SPEEDUP, (
        f"sharded qualification speedup {geomean:.2f}x < "
        f"{GATE_SPEEDUP}x at P={GATE_P}"
    )


if __name__ == "__main__":
    write_results(run_bench(), run_agreement())
