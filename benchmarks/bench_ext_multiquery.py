"""EXT — multi-query optimization gains (the paper's future-work item (b)).

Not a paper figure: measures what the batched executor saves over
one-at-a-time execution for two realistic exploration patterns:

* *threshold sweep* — the same focal subset probed at several
  (minsupp, minconf) settings (shares FOCUS, SEARCH and the record-level
  pass);
* *region sweep* — every value of a partitioning attribute probed at one
  setting (shares nothing across groups — the baseline sanity check).
"""

from __future__ import annotations

import time

import pytest

from _harness import RESULTS_DIR
from repro.analysis.reporting import format_table, write_csv
from repro.core.mipindex import build_mip_index
from repro.core.multiquery import execute_batch
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.dataset.synthetic import chess_like


@pytest.fixture(scope="module")
def index():
    return build_mip_index(chess_like(n_records=800, seed=7), 0.10)


def sweep_queries(index) -> list[LocalizedQuery]:
    return [
        LocalizedQuery({0: frozenset({1, 2})}, minsupp, minconf)
        for minsupp in (0.35, 0.45, 0.55)
        for minconf in (0.80, 0.90)
    ]


def region_queries(index) -> list[LocalizedQuery]:
    card = index.table.schema.attributes[0].cardinality
    return [
        LocalizedQuery({0: frozenset({v})}, 0.4, 0.85) for v in range(card)
    ]


@pytest.mark.parametrize("pattern", ["threshold_sweep", "region_sweep"])
def test_multiquery_gains(benchmark, index, pattern):
    queries = (
        sweep_queries(index) if pattern == "threshold_sweep"
        else region_queries(index)
    )

    def run():
        t0 = time.perf_counter()
        for query in queries:
            execute_plan(PlanKind.SEV, index, query)
        individual = time.perf_counter() - t0
        t0 = time.perf_counter()
        report = execute_batch(index, queries)
        batched = time.perf_counter() - t0
        return individual, batched, report

    individual, batched, report = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    rows = [[
        pattern, len(queries), report.n_groups,
        f"{individual * 1000:.1f}", f"{batched * 1000:.1f}",
        f"{(individual - batched) / individual:.0%}",
    ]]
    headers = ["pattern", "queries", "focal groups", "individual ms",
               "batched ms", "saving"]
    print("\nEXT — multi-query batching")
    print(format_table(headers, rows))
    write_csv(RESULTS_DIR / f"ext_multiquery_{pattern}.csv", headers, rows)

    # Output equality with individual execution is covered by the unit
    # tests; here assert the sharing structure and that batching does not
    # regress.
    if pattern == "threshold_sweep":
        assert report.n_groups == 1
        assert batched < individual
    else:
        assert report.n_groups == len(queries)
