"""FIG11 — average CPU cost of the six mining plans, PUMSB dataset.

Paper: Figure 11 — same grid over PUMSB.  The paper notes that for the
larger focal subsets "no clear winner" emerges and ARM is sometimes best
on this dense dataset; the shape assertions below check both regimes.
"""

from __future__ import annotations

import pytest

from _harness import GRID_HEADERS, RESULTS_DIR, grid_rows, run_grid
from repro.analysis.reporting import format_table, write_csv
from repro.core.plans import PlanKind, execute_plan
from repro.workloads.experiments import EXPERIMENTS, FOCAL_FRACTIONS
from repro.workloads.queries import random_focal_query

NAME = "pumsb"


@pytest.mark.parametrize("kind", list(PlanKind), ids=lambda k: k.value)
def test_fig11_plan_cells(benchmark, engines, kind):
    import numpy as np

    engine = engines(NAME)
    spec = EXPERIMENTS[NAME]
    workload = random_focal_query(
        engine.table, 0.5, spec.minsupps[0], 0.85, np.random.default_rng(31),
    )
    result = benchmark.pedantic(
        execute_plan, args=(kind, engine.index, workload.query),
        rounds=3, iterations=1,
    )
    assert result.kind is kind


def test_fig11_grid(benchmark, engines):
    engine = engines(NAME)
    spec = EXPERIMENTS[NAME]
    cells = benchmark.pedantic(
        run_grid, args=(engine, spec, FOCAL_FRACTIONS),
        rounds=1, iterations=1,
    )
    rows = grid_rows(cells)
    print("\nFIG11 — avg plan execution time (ms), PUMSB, minconf=85%")
    print(format_table(GRID_HEADERS, rows))
    write_csv(RESULTS_DIR / "fig11_pumsb.csv", GRID_HEADERS, rows)

    # The paper's reading: the supported-filter plans shine on PUMSB, and
    # overall no single plan wins every cell.
    fastest_kinds = {cell.fastest for cell in cells}
    assert len(fastest_kinds) >= 2, "expected no single clear winner"
