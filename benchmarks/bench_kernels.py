"""KERN — scalar int-tidset path vs the batched ``repro.kernels`` path.

Measures the two hot-path kernels the vectorized bitset layer replaced:

* ``eliminate_qualify`` — ELIMINATE/SUPPORTED-VERIFY's candidate
  qualification: ``|t(I_k) ∩ D^Q|`` for all k candidates (scalar: one
  big-int AND + popcount per candidate; kernel: one row-gather +
  :func:`repro.kernels.and_count`);
* ``charm_pairwise`` — CHARM's one-vs-rest extension step: ``|t(X_i) ∩
  t(X_j)|`` for all j > i over an equivalence class.

The grid crosses ``n_records ∈ {1k, 5k, 20k}`` with candidate counts, and
the speedup series lands in ``benchmarks/results/kernels_speedup.csv``
plus the top-level ``BENCH_kernels.json`` so later PRs can track the perf
trajectory.  Run as a pytest test (asserts the >=2x acceptance bar for
batched qualification at >=5k records) or directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import kernels
from repro import tidset as ts
from repro.analysis.reporting import format_table, write_csv

from _harness import BENCH_SMOKE, smoke_grid

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_kernels.json"

#: Smoke mode keeps one gate-eligible size (5k records) so the >=2x
#: acceptance bar below is still enforced, just on a smaller grid.
N_RECORDS = smoke_grid((1_000, 5_000, 20_000), (1_000, 5_000))
N_CANDIDATES = smoke_grid((64, 256, 1024), (64, 256))
#: CHARM levels are quadratic in the class size — keep the grid tractable.
CHARM_CANDIDATES = smoke_grid((32, 128, 512), (32, 128))
DENSITY = 0.3
REPEATS = smoke_grid(5, 3)


def _random_tidsets(rng: np.random.Generator, k: int, n: int) -> list[int]:
    """k random tidsets over universe n at the benchmark density."""
    return [
        int.from_bytes(
            np.packbits(
                rng.random(n) < DENSITY, bitorder="little"
            ).tobytes(),
            "little",
        )
        for _ in range(k)
    ]


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_eliminate(rng, n_records: int, n_candidates: int) -> dict:
    tidsets = _random_tidsets(rng, n_candidates, n_records)
    dq = _random_tidsets(rng, 1, n_records)[0]
    words = kernels.n_words(n_records)
    matrix = kernels.pack_many(tidsets, words)  # offline, like the MIP-index

    def scalar():
        return [(t & dq).bit_count() for t in tidsets]

    def kernel():
        # dq packing happens per query, so it is timed; the candidate
        # matrix is an offline artifact and is not.
        return kernels.and_count(matrix, kernels.pack(dq, words))

    assert list(kernel()) == scalar()
    scalar_s = _best_of(scalar)
    kernel_s = _best_of(kernel)
    return {
        "kernel": "eliminate_qualify",
        "n_records": n_records,
        "n_candidates": n_candidates,
        "scalar_s": scalar_s,
        "kernel_s": kernel_s,
        "speedup": scalar_s / kernel_s if kernel_s else float("inf"),
    }


def _bench_charm_pairwise(rng, n_records: int, n_candidates: int) -> dict:
    """One whole CHARM extension level: one-vs-rest for every class member.

    The packed class matrix is built once per level and amortized over all
    ``k`` one-vs-rest sweeps — exactly how ``_charm_extend`` uses it — so
    the kernel timing charges the packing too.
    """
    tidsets = _random_tidsets(rng, n_candidates, n_records)
    words = kernels.n_words(n_records)

    def scalar():
        return [
            [(ti & tj).bit_count() for tj in tidsets[i + 1:]]
            for i, ti in enumerate(tidsets)
        ]

    def kernel():
        matrix = kernels.pack_many(tidsets, words)
        return [
            kernels.and_count(matrix[i + 1:], matrix[i])
            for i in range(len(tidsets))
        ]

    assert [list(row) for row in kernel()] == scalar()
    scalar_s = _best_of(scalar)
    kernel_s = _best_of(kernel)
    return {
        "kernel": "charm_pairwise",
        "n_records": n_records,
        "n_candidates": n_candidates,
        "scalar_s": scalar_s,
        "kernel_s": kernel_s,
        "speedup": scalar_s / kernel_s if kernel_s else float("inf"),
    }


def run_bench(seed: int = 3) -> list[dict]:
    rng = np.random.default_rng(seed)
    records: list[dict] = []
    for n_records in N_RECORDS:
        for n_candidates in N_CANDIDATES:
            records.append(_bench_eliminate(rng, n_records, n_candidates))
        for n_candidates in CHARM_CANDIDATES:
            records.append(_bench_charm_pairwise(rng, n_records, n_candidates))
    return records


def write_results(records: list[dict]) -> None:
    headers = ["kernel", "n_records", "n_candidates", "scalar_ms",
               "kernel_ms", "speedup"]
    rows = [
        [r["kernel"], r["n_records"], r["n_candidates"],
         f"{r['scalar_s'] * 1e3:.3f}", f"{r['kernel_s'] * 1e3:.3f}",
         f"{r['speedup']:.1f}x"]
        for r in records
    ]
    print("\nKERN — scalar int-tidset path vs batched repro.kernels path")
    print(format_table(headers, rows))
    write_csv(RESULTS_DIR / "kernels_speedup.csv", headers, rows)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "kernels",
                "numpy": np.__version__,
                "popcount": (
                    "bitwise_count" if kernels.HAS_BITWISE_COUNT
                    else "lut16"
                ),
                "density": DENSITY,
                "repeats": REPEATS,
                "smoke": BENCH_SMOKE,
                "series": records,
            },
            indent=2,
        )
        + "\n"
    )


def test_kernel_speedup():
    records = run_bench()
    write_results(records)
    # Acceptance bar: batched ELIMINATE-style qualification is >= 2x the
    # scalar path at every >= 5k-record universe (geometric mean over the
    # candidate-count axis, so one noisy cell cannot flip the verdict).
    for n_records in (n for n in N_RECORDS if n >= 5_000):
        speedups = [
            r["speedup"] for r in records
            if r["kernel"] == "eliminate_qualify"
            and r["n_records"] == n_records
        ]
        assert speedups, f"no qualifying series at n_records={n_records}"
        geomean = float(np.exp(np.mean(np.log(speedups))))
        assert geomean >= 2.0, (
            f"kernel speedup {geomean:.2f}x < 2x at n_records={n_records}"
        )
    # Sanity: both paths agree on a fresh draw (byte-identical counts).
    rng = np.random.default_rng(11)
    sets_ = _random_tidsets(rng, 50, 5_000)
    dq = _random_tidsets(rng, 1, 5_000)[0]
    words = kernels.n_words(5_000)
    counts = kernels.and_count(
        kernels.pack_many(sets_, words), kernels.pack(dq, words)
    )
    assert list(counts) == [ts.count(ts.intersect(s, dq)) for s in sets_]


if __name__ == "__main__":
    write_results(run_bench())
