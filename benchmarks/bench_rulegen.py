"""RULEGEN — scalar big-int rule extraction vs the focal-projected path.

Measures the whole VERIFY rule-generation stage on qualified candidates:

* **scalar** — :func:`repro.core.operators._rules_from_qualified_reference`,
  the memoized big-int AND chain with consequent-growth pruning (the
  pre-focal-projection implementation, kept verbatim as the parity
  oracle);
* **batched** — :func:`repro.core.operators._rules_from_qualified`, the
  focal-projected subset-lattice path: one projection into the dense
  ``|D^Q|``-bit universe (charged to the batched timing via a fresh
  kernel per repetition), ``2**n`` vectorized ANDs per width group, one
  batched popcount, mask-indexed confidence checks, and a numeric
  ``lexsort`` emit in canonical rule order.

The grid crosses chess- and mushroom-shaped tables with focal fractions
and both expand modes; every cell asserts the two paths produce
*byte-identical* rule sets before timing them.  The speedup series lands
in ``benchmarks/results/rulegen_speedup.csv`` plus the top-level
``BENCH_rulegen.json``.  Run as a pytest test (asserts the >=2x
per-dataset geometric-mean acceptance bar) or directly::

    PYTHONPATH=src python benchmarks/bench_rulegen.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.core.mipindex import build_mip_index
from repro.core.operators import (
    _rules_from_qualified,
    _rules_from_qualified_reference,
    make_context,
    op_eliminate,
    op_search,
)
from repro.dataset.synthetic import chess_like, mushroom_like

from _harness import BENCH_SMOKE, smoke_grid
from repro.workloads.queries import random_focal_query

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_rulegen.json"

#: (dataset, table factory, n_records grid, minsupp).  Smoke keeps one
#: gate-eligible size per dataset; the acceptance bar stays enforced.
DATASETS = (
    ("chess", chess_like, smoke_grid((1_000, 2_000), (1_000,)), 0.30),
    ("mushroom", mushroom_like, smoke_grid((1_600, 3_200), (1_600,)), 0.25),
)
#: Focal fractions: smoke drops the tiny-output 0.2 cell (a handful of
#: rules, numpy-call-overhead-bound) so CI noise cannot flip the gate.
FRACTIONS = smoke_grid((0.5, 0.2, 0.1), (0.5, 0.1))
MINCONF = 0.7
PRIMARY_SUPPORT = 0.08
REPEATS = 3


def _best_of(fn, repeats: int = REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def _bench_cell(dataset, index, wq, n_records, fraction, minsupp, expand):
    ctx = make_context(index, wq.query, expand=expand)
    qualified = op_eliminate(ctx, op_search(ctx))

    def batched():
        # A fresh kernel per repetition charges the one-off focal
        # projection to the batched timing — no amortization tricks.
        ctx._focal_kernel = None
        ctx.projection_s = 0.0
        rules, _evals, _kernel_s = _rules_from_qualified(ctx, qualified)
        return rules

    def scalar():
        rules, _lookups = _rules_from_qualified_reference(ctx, qualified)
        return rules

    batched_s, batched_rules = _best_of(batched)
    scalar_s, scalar_rules = _best_of(scalar)
    # Byte-identical rule sets (same tuples, counts, floats, order) for
    # every benchmark query — the bar is exactness, not approximation.
    assert batched_rules == scalar_rules, (
        f"rule sets diverge: {dataset} n={n_records} frac={fraction} "
        f"expand={expand}"
    )
    return {
        "dataset": dataset,
        "n_records": n_records,
        "fraction": fraction,
        "minsupp": minsupp,
        "expand": expand,
        "dq_size": ctx.dq_size,
        "n_qualified": len(qualified),
        "n_rules": len(batched_rules),
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s if batched_s else float("inf"),
    }


def _substantive_query(table, index, fraction, minsupp, seed, pool=5):
    """Deterministically pick the most rule-substantive query of a pool.

    Rule-generation time is the quantity under test, so each cell mines
    the query with the largest qualified-candidate set among ``pool``
    deterministic draws — a query qualifying a handful of candidates
    measures numpy call overhead, not extraction throughput.
    """
    best_wq, best_q = None, -1
    for k in range(pool):
        rng = np.random.default_rng(seed * 100 + k)
        wq = random_focal_query(table, fraction, minsupp, MINCONF, rng)
        ctx = make_context(index, wq.query)
        n_qualified = len(op_eliminate(ctx, op_search(ctx)))
        if n_qualified > best_q:
            best_wq, best_q = wq, n_qualified
    return best_wq


def run_bench(seed: int = 5) -> list[dict]:
    records: list[dict] = []
    query_seed = seed
    for dataset, make_table, sizes, minsupp in DATASETS:
        for n_records in sizes:
            table = make_table(n_records=n_records)
            index = build_mip_index(table, primary_support=PRIMARY_SUPPORT)
            for fraction in FRACTIONS:
                query_seed += 1
                wq = _substantive_query(
                    table, index, fraction, minsupp, query_seed
                )
                for expand in (False, True):
                    records.append(
                        _bench_cell(dataset, index, wq, n_records,
                                    fraction, minsupp, expand)
                    )
    return records


def _geomean(values) -> float:
    return float(np.exp(np.mean(np.log(values))))


def write_results(records: list[dict]) -> None:
    headers = ["dataset", "n_records", "fraction", "expand", "n_rules",
               "scalar_ms", "batched_ms", "speedup"]
    rows = [
        [r["dataset"], r["n_records"], r["fraction"], int(r["expand"]),
         r["n_rules"], f"{r['scalar_s'] * 1e3:.2f}",
         f"{r['batched_s'] * 1e3:.2f}", f"{r['speedup']:.2f}x"]
        for r in records
    ]
    print("\nRULEGEN — scalar big-int extraction vs focal-projected kernels")
    print(format_table(headers, rows))
    for dataset, *_ in DATASETS:
        cells = [r["speedup"] for r in records if r["dataset"] == dataset]
        print(f"  {dataset}: geomean {_geomean(cells):.2f}x over "
              f"{len(cells)} cells")
    write_csv(RESULTS_DIR / "rulegen_speedup.csv", headers, rows)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "rulegen",
                "numpy": np.__version__,
                "minconf": MINCONF,
                "primary_support": PRIMARY_SUPPORT,
                "repeats": REPEATS,
                "smoke": BENCH_SMOKE,
                "series": records,
            },
            indent=2,
        )
        + "\n"
    )


def test_rulegen_speedup():
    records = run_bench()
    write_results(records)
    # Acceptance bar: the focal-projected path generates rules >= 2x
    # faster than the scalar reference on each dataset shape (geometric
    # mean over the fraction x expand grid, so one noisy cell cannot
    # flip the verdict).  Byte-identical rule sets were already asserted
    # per query inside _bench_cell.
    for dataset, *_ in DATASETS:
        cells = [r["speedup"] for r in records if r["dataset"] == dataset]
        assert cells, f"no cells for {dataset}"
        geomean = _geomean(cells)
        assert geomean >= 2.0, (
            f"rulegen speedup {geomean:.2f}x < 2x on {dataset}"
        )


if __name__ == "__main__":
    write_results(run_bench())
