"""Session-wide engines for the benchmark harness.

Each benchmark dataset's offline phase (index build + cost calibration)
runs once per pytest session and is shared by every figure bench.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _harness import build_engine  # noqa: E402
from repro.workloads.experiments import EXPERIMENTS  # noqa: E402


@pytest.fixture(scope="session")
def engines():
    """name -> calibrated Colarm engine, built lazily and cached."""
    cache = {}

    def get(name: str):
        if name not in cache:
            cache[name] = build_engine(EXPERIMENTS[name])
        return cache[name]

    return get
