"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so the package
can be installed editable in offline environments whose setuptools/pip
combination lacks the PEP 517 editable path (no ``wheel`` package).
"""

from setuptools import setup

setup()
