"""Repository-root pytest configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites run even
when the package has not been installed — a safety net for offline
environments where ``pip install -e .`` cannot resolve its build
dependencies (use ``python setup.py develop`` there; see README).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
