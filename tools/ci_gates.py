"""CI gate runner: a scaled-down ACC accuracy/regret check with
thresholds loaded from the checked-in ``ci_gates.json``.

The full 108-scenario ACC experiment (``benchmarks/
bench_optimizer_accuracy.py``) takes ~90 s plus three index builds; CI
runs this subset instead — one dataset, a reduced focal-fraction grid,
the same seed and methodology — and enforces the thresholds the repo has
committed to.  A cost-model regression (a broken ARM weight, a formula
change that misprices a plan family) shows up here as a failed gate, not
as a silently slower optimizer.

Usage::

    PYTHONPATH=src:benchmarks python tools/ci_gates.py
    ... --config ci_gates.json --report benchmarks/results/ci_gates.json
    ... --only serving            # run a single gate
    ... --override-weight arm=0   # sanity check: must FAIL the gate
    ... --only serving --corrupt-admission       # likewise: must FAIL
    ... --only maintenance --corrupt-maintenance # likewise: must FAIL
    ... --only cluster --corrupt-routing         # likewise: must FAIL

``--override-weight`` deliberately corrupts one fitted weight after
calibration, ``--corrupt-admission`` mis-wires the serving layer's
admission knobs, ``--corrupt-maintenance`` severs the delta-store merge
correction, and ``--corrupt-routing`` swaps consistent hashing for
modulo placement; they exist so the gates themselves can be tested (a
gate that cannot fail gates nothing).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))


def run_acc_gate(config: dict, overrides: dict[str, float]) -> dict:
    """Run the reduced ACC experiment and evaluate its thresholds."""
    from _harness import build_engine, run_accuracy, summarize_accuracy
    from repro.core.costs import CostWeights
    from repro.workloads.experiments import EXPERIMENTS

    spec = EXPERIMENTS[config["dataset"]]
    t0 = time.perf_counter()
    engine = build_engine(spec)
    build_s = time.perf_counter() - t0

    if overrides:
        weights = dict(engine.optimizer.weights.weights)
        weights.update(overrides)
        engine.optimizer.set_weights(CostWeights(weights))

    t0 = time.perf_counter()
    records = run_accuracy(
        engine,
        spec,
        tuple(config["fractions"]),
        seed=config["seed"],
        repetitions=config["repetitions"],
    )
    run_s = time.perf_counter() - t0
    summary = summarize_accuracy(records)

    checks = {
        "strict_accuracy": (
            summary["strict_accuracy"],
            ">=",
            config["min_strict_accuracy"],
        ),
        "tolerant_accuracy": (
            summary["tolerant_accuracy"],
            ">=",
            config["min_tolerant_accuracy"],
        ),
        "extra_cost": (summary["extra_cost"], "<=", config["max_extra_cost"]),
    }
    failures = [
        name
        for name, (value, op, bound) in checks.items()
        if (value < bound if op == ">=" else value > bound)
    ]

    residuals = {
        kind.value: stats
        for kind, stats in engine.optimizer.residual_summary().items()
    }
    return {
        "dataset": config["dataset"],
        "scenarios": int(summary["n"]),
        "build_s": round(build_s, 2),
        "run_s": round(run_s, 2),
        "summary": {k: round(float(v), 4) for k, v in summary.items()},
        "checks": {
            name: {"value": round(float(v), 4), "op": op, "bound": bound}
            for name, (v, op, bound) in checks.items()
        },
        "residuals": residuals,
        "weight_overrides": overrides,
        "passed": not failures,
        "failures": failures,
    }


def run_parallel_selftest(config: dict) -> dict:
    """Pricing sanity for the sharded-execution cost terms.

    Two structural assertions over a probe workload, no worker pool
    needed (a synthetic multi-worker profile is installed, so the test
    is meaningful even on single-core runners where a real pool would
    trivially never be chosen):

    * ``par_dispatch = inf`` — every parallel variant prices to
      infinity, so the optimizer must pick a parallel plan **zero**
      times.  A regression that drops the dispatch term from the
      parallel formulae (making "free" sharding look attractive) fails
      here.
    * ``par_dispatch = par_merge = 0`` — with overhead priced at zero a
      parallel variant strictly undercuts its serial twin wherever the
      record-partitioned terms are nonzero, so **at least one** scenario
      must choose parallel.  A regression that prices parallel variants
      above serial unconditionally (a gate that cannot fail gates
      nothing) fails here.
    """
    from repro.core.calibration import default_probe_queries
    from repro.core.costs import CostWeights, ParallelCostProfile
    from repro.core.engine import Colarm
    from repro.workloads.experiments import EXPERIMENTS

    spec = EXPERIMENTS[config["dataset"]]
    t0 = time.perf_counter()
    # Default weights suffice: both assertions are structural (inf / 0),
    # not threshold comparisons, so the calibration step is skipped.
    engine = Colarm(spec.make_table(), primary_support=spec.primary_support)
    build_s = time.perf_counter() - t0
    profile = ParallelCostProfile(
        n_shards=int(config["n_shards"]),
        effective_workers=int(config["effective_workers"]),
    )
    engine.optimizer.set_parallel(profile)
    queries = default_probe_queries(
        engine.index,
        n_queries=int(config["n_queries"]),
        seed=int(config["seed"]),
    )
    base = dict(engine.optimizer.weights.weights)

    def picks_with(dispatch: float, merge: float) -> tuple[int, int]:
        weights = dict(base)
        weights["par_dispatch"] = dispatch
        weights["par_merge"] = merge
        engine.optimizer.set_weights(CostWeights(weights))
        choices = [engine.optimizer.choose(q) for q in queries]
        priced = sum(1 for c in choices if c.parallel_estimates)
        return sum(1 for c in choices if c.parallel), priced

    inf_picks, inf_priced = picks_with(float("inf"), base["par_merge"])
    free_picks, _ = picks_with(0.0, 0.0)
    failures = []
    if inf_priced == 0:
        failures.append("no_parallel_estimates")
    if inf_picks != 0:
        failures.append("parallel_chosen_at_infinite_dispatch")
    if free_picks == 0:
        failures.append("parallel_never_chosen_at_zero_overhead")
    return {
        "dataset": config["dataset"],
        "scenarios": len(queries),
        "build_s": round(build_s, 2),
        "profile": {
            "n_shards": profile.n_shards,
            "effective_workers": profile.effective_workers,
        },
        "parallel_picks_at_inf_dispatch": inf_picks,
        "parallel_picks_at_zero_overhead": free_picks,
        "passed": not failures,
        "failures": failures,
    }


def run_cache_selftest(config: dict) -> dict:
    """Pricing sanity for the materialized-cache cost terms.

    A live cache is warmed by executing every probe query once (each
    execution populates the rules and lattice tiers); the repeat pass is
    then priced twice:

    * ``cache_probe = inf`` — every CACHE variant prices to infinity, so
      the optimizer must pick one **zero** times even with a fully warm
      cache.  A regression that drops the probe term (making "free"
      cache hits look costless to even consider) fails here.
    * ``cache_probe = cache_load = 0`` — a zero-cost warm hit strictly
      undercuts every fresh variant, so **every** repeated query must be
      served from the cache.  A regression that misprices CACHE variants
      above fresh execution unconditionally fails here.
    """
    from repro.core.calibration import default_probe_queries
    from repro.core.costs import CostWeights
    from repro.core.engine import Colarm
    from repro.workloads.experiments import EXPERIMENTS

    spec = EXPERIMENTS[config["dataset"]]
    t0 = time.perf_counter()
    # Default weights suffice: both assertions are structural (inf / 0).
    engine = Colarm(spec.make_table(), primary_support=spec.primary_support)
    build_s = time.perf_counter() - t0
    engine.enable_cache(calibrate=False)
    queries = default_probe_queries(
        engine.index,
        n_queries=int(config["n_queries"]),
        seed=int(config["seed"]),
    )
    for q in queries:  # warm pass: populate rules + lattice tiers
        engine.query(q)
    base = dict(engine.optimizer.weights.weights)

    def picks_with(probe_w: float, load_w: float) -> tuple[int, int]:
        weights = dict(base)
        weights["cache_probe"] = probe_w
        weights["cache_load"] = load_w
        engine.optimizer.set_weights(CostWeights(weights))
        choices = [engine.optimizer.choose(q) for q in queries]
        priced = sum(1 for c in choices if c.cached_estimates)
        return sum(1 for c in choices if c.cached), priced

    inf_picks, inf_priced = picks_with(float("inf"), base["cache_load"])
    free_picks, _ = picks_with(0.0, 0.0)
    failures = []
    if inf_priced == 0:
        failures.append("no_cache_estimates")
    if inf_picks != 0:
        failures.append("cache_chosen_at_infinite_probe")
    if free_picks != len(queries):
        failures.append("cache_not_chosen_for_all_warm_repeats")
    return {
        "dataset": config["dataset"],
        "scenarios": len(queries),
        "build_s": round(build_s, 2),
        "cache_entries": len(engine.cache),
        "cache_stats": engine.cache.stats.as_dict(),
        "cache_picks_at_inf_probe": inf_picks,
        "cache_picks_at_zero_cost": free_picks,
        "passed": not failures,
        "failures": failures,
    }


def run_serving_selftest(config: dict, corrupt: bool = False) -> dict:
    """Admission-control sanity for the concurrent query service.

    Three structural assertions (no thresholds — each pins a degenerate
    knob setting to the behaviour it *must* produce):

    * ``cost_ceiling = 0`` with ``over_budget="shed"`` — every request's
      estimated cost is strictly positive, so a live service over a
      probe workload must shed **everything** (zero serves).  A
      regression that stops using the optimizer's estimates as admission
      weights (e.g. admitting on a constant) fails here.
    * ``aging = inf`` — the scheduler's effective priority is dominated
      by waiting time, so pops must come out in **arrival order** (pure
      FIFO) even when costs are pushed in descending order.
    * ``aging = 0`` — priority is pure cost, so pops must come out in
      **cost order** regardless of arrival order.

    ``corrupt=True`` deliberately mis-wires the first two knobs (ceiling
    ``0 -> inf``, aging ``inf -> 0``) while keeping the assertions: both
    must then FAIL — a gate that cannot fail gates nothing.
    """
    import asyncio

    from repro.core.calibration import default_probe_queries
    from repro.core.engine import Colarm
    from repro.dataset.salary import salary_dataset
    from repro.errors import ServiceOverloadError
    from repro.serving import CostScheduler, ServingConfig, serve_all

    t0 = time.perf_counter()
    engine = Colarm(
        salary_dataset(),
        primary_support=float(config.get("primary_support", 0.15)),
    )
    build_s = time.perf_counter() - t0
    queries = default_probe_queries(
        engine.index,
        n_queries=int(config["n_queries"]),
        seed=int(config["seed"]),
    )

    ceiling = float("inf") if corrupt else 0.0
    serving = ServingConfig(cost_ceiling=ceiling, over_budget="shed")
    results, snapshot = asyncio.run(serve_all(engine, list(queries), serving))
    n_shed = sum(isinstance(r, ServiceOverloadError) for r in results)

    costs = [5.0, 4.0, 3.0, 2.0, 1.0]  # descending: FIFO != cost order
    fifo_sched = CostScheduler(aging=0.0 if corrupt else float("inf"))
    for i, cost in enumerate(costs):
        fifo_sched.push(i, cost, enqueued=float(i))
    fifo_order = [fifo_sched.pop() for _ in costs]

    cost_sched = CostScheduler(aging=0.0)
    for i, cost in enumerate(costs):
        cost_sched.push(i, cost, enqueued=float(i))
    cost_order = [cost_sched.pop() for _ in costs]

    failures = []
    if n_shed != len(queries):
        failures.append("zero_ceiling_did_not_shed_everything")
    if fifo_order != list(range(len(costs))):
        failures.append("infinite_aging_not_fifo")
    if cost_order != sorted(range(len(costs)), key=lambda i: costs[i]):
        failures.append("zero_aging_not_cost_order")
    return {
        "dataset": "salary",
        "scenarios": len(queries),
        "build_s": round(build_s, 2),
        "corrupted": corrupt,
        "shed_at_zero_ceiling": n_shed,
        "fifo_order_at_inf_aging": fifo_order,
        "cost_order_at_zero_aging": cost_order,
        "service_stats": snapshot,
        "passed": not failures,
        "failures": failures,
    }


def run_maintenance_selftest(config: dict, corrupt: bool = False) -> dict:
    """Delta-store maintenance sanity: staleness, pricing, byte-identity.

    A live engine (cache + maintenance enabled) over a probe workload is
    mutated in place — a batch append plus a couple of deletes — and held
    to three structural assertions:

    * **Staleness** — the warm pass populates a cache entry for every
      probe; the append bumps the index generation, so every subsequent
      probe must MISS.  A regression that stops stamping delta mutations
      into the generation clock (serving pre-append rules from the
      cache) fails here.
    * **Pricing** — ``delta_probe = inf`` makes the per-query delta toll
      infinite, so :meth:`recompaction_advice` must recommend folding
      for **every** probe while un-folded delta exists; restored default
      weights against an astronomically large build cost must recommend
      it for **none**.  A regression that drops the delta terms from the
      cost formulae (making un-folded delta look free forever) fails the
      first; one that prices rebuilds as free fails the second.
    * **Byte-identity** — every coverage-guaranteed probe answered
      against main + delta must equal a from-scratch rebuild of the live
      records, rule for rule, support count for support count.

    ``corrupt=True`` severs the delta merge correction (the engine serves
    main-only answers while the delta still holds live records) and must
    FAIL — a gate that cannot fail gates nothing.
    """
    import numpy as np

    from repro.core.calibration import default_probe_queries
    from repro.core.costs import CostWeights
    from repro.core.engine import Colarm
    from repro.core.mipindex import build_mip_index
    from repro.core.plans import PlanKind, execute_plan
    from repro.dataset.table import RelationalTable
    from repro.workloads.experiments import EXPERIMENTS

    spec = EXPERIMENTS[config["dataset"]]
    table = spec.make_table()
    t0 = time.perf_counter()
    # Expanded mode: all plan families agree exactly, so byte-identity
    # needs no per-plan tolerance.  Default weights suffice: every
    # assertion is structural (miss / inf / identity).
    engine = Colarm(table, primary_support=spec.primary_support, expand=True)
    build_s = time.perf_counter() - t0
    engine.enable_cache(calibrate=False)
    # A near-unity delta fraction and a zero advice horizon: no trigger
    # may fold the delta away mid-gate, or the corrupted run would
    # trivially pass (a gate that cannot fail gates nothing).
    engine.enable_maintenance(
        max_delta_fraction=0.99, calibrate=False, horizon=0
    )
    queries = default_probe_queries(
        engine.index,
        n_queries=int(config["n_queries"]),
        seed=int(config["seed"]),
    )

    for q in queries:  # warm pass: populate a cache entry per probe
        engine.query(q)
    warm_hits = sum(
        1 for q in queries if engine.cache.probe(q).kind is not None
    )

    n_append = int(config.get("n_append", 48))
    n_delete = int(config.get("n_delete", 3))
    appended = [list(map(int, row)) for row in table.data[:n_append]]
    engine.append(appended)
    engine.delete(list(range(n_delete)))
    if corrupt:
        # Sever the merge correction: delta_view() reporting "no delta"
        # makes the kernel path serve main-only answers while the delta
        # still holds live records and main tombstones.
        engine.maintenance.delta_view = lambda query: None
    stale_hits = sum(
        1 for q in queries if engine.cache.probe(q).kind is not None
    )

    base = dict(engine.optimizer.weights.weights)
    inf_weights = dict(base)
    inf_weights["delta_probe"] = float("inf")
    engine.optimizer.set_weights(CostWeights(inf_weights))
    inf_recommended = sum(
        1
        for q in queries
        if engine.optimizer.recompaction_advice(
            q, build_cost_s=1e6, horizon=1
        ).recommended
    )
    engine.optimizer.set_weights(CostWeights(base))
    finite_recommended = sum(
        1
        for q in queries
        if engine.optimizer.recompaction_advice(
            q, build_cost_s=1e6, horizon=1
        ).recommended
    )

    keep = np.ones(len(table.data), dtype=bool)
    keep[:n_delete] = False
    live = np.concatenate(
        [table.data[keep], np.asarray(appended, dtype=table.data.dtype)]
    )
    fresh = build_mip_index(
        RelationalTable(table.schema, live),
        primary_support=engine.maintenance.primary_support,
    )

    def rule_key(rules):
        return sorted(
            (r.antecedent, r.consequent, r.support_count,
             round(r.confidence, 12))
            for r in rules
        )

    covered = mismatches = 0
    for q in queries:
        mask = np.ones(len(live), dtype=bool)
        for attr, values in q.range_selections.items():
            mask &= np.isin(live[:, attr], list(values))
        dq_live = int(mask.sum())
        if dq_live == 0 or not engine.maintenance.coverage_guaranteed(
            q, dq_live
        ):
            continue
        covered += 1
        expected = rule_key(
            execute_plan(PlanKind.SEV, fresh, q, expand=True).rules
        )
        if rule_key(engine.query(q, use_cache=False).rules) != expected:
            mismatches += 1

    failures = []
    if warm_hits != len(queries):
        failures.append("cache_not_warm_before_append")
    if stale_hits != 0:
        failures.append("stale_cache_hit_after_append")
    if inf_recommended != len(queries):
        failures.append("inf_delta_probe_did_not_force_recompaction")
    if finite_recommended != 0:
        failures.append("default_weights_always_force_recompaction")
    if covered == 0:
        failures.append("no_coverage_guaranteed_probes")
    if mismatches != 0:
        failures.append("maintained_answers_diverge_from_rebuild")
    return {
        "dataset": config["dataset"],
        "scenarios": len(queries),
        "build_s": round(build_s, 2),
        "corrupted": corrupt,
        "n_append": n_append,
        "n_delete": n_delete,
        "warm_hits_before_append": warm_hits,
        "stale_hits_after_append": stale_hits,
        "recompact_recommended_at_inf_probe": inf_recommended,
        "recompact_recommended_at_default": finite_recommended,
        "identity_covered": covered,
        "identity_mismatches": mismatches,
        "passed": not failures,
        "failures": failures,
    }


def run_cluster_selftest(config: dict, corrupt: bool = False) -> dict:
    """Routing sanity for the multi-process serving cluster.

    Structural assertions over the consistent-hash ring plus one live
    end-to-end identity check:

    * **Determinism** — two rings built from the same membership in
      different insertion orders must place every key identically
      (routing is a function of membership, nothing else).
    * **Balance** — with W workers at the production replica count, no
      worker's share of a key sample may fall below ``1/(4W)`` or rise
      above ``3/W``.
    * **Bounded remap** — adding a worker may move keys *only onto the
      joiner*, and at most ``1/W + eps`` of them; removing it may move
      only the leaver's keys.  This is the property that keeps warm
      caches alive through membership changes.
    * **Identity** — a live two-worker cluster over the salary dataset
      answers every probe byte-identically to the engine it was built
      from, on the worker the ring names (sticky routing).

    ``corrupt=True`` replaces consistent routing with naive modulo
    placement — still deterministic and balanced, but a join reshuffles
    nearly the whole key space, so the bounded-remap assertions must
    then FAIL (a gate that cannot fail gates nothing).
    """
    import asyncio
    import tempfile

    from repro import cluster as cluster_mod
    from repro.cluster import (
        ClusterConfig,
        ClusterService,
        HashRing,
        _focal_key_bytes,
    )
    from repro.core.calibration import default_probe_queries
    from repro.core.engine import Colarm
    from repro.dataset.salary import salary_dataset
    from repro.errors import ServiceError
    from repro.serving import ServingConfig

    replicas = int(config.get("replicas", 96))
    n_workers = int(config.get("workers", 3))
    keys = [f"gate-key-{i}".encode() for i in range(int(config["n_keys"]))]

    original_route = HashRing.route
    if corrupt:

        def modulo_route(self, key: bytes) -> int:
            workers = sorted(set(self._owners))
            if not workers:
                raise ServiceError("cannot route on an empty ring")
            return workers[cluster_mod._point(key) % len(workers)]

        HashRing.route = modulo_route

    try:

        def make_ring(worker_ids) -> HashRing:
            ring = HashRing(replicas=replicas)
            for worker_id in worker_ids:
                ring.add(worker_id)
            return ring

        failures = []
        ids = list(range(n_workers))
        a, b = make_ring(ids), make_ring(reversed(ids))
        if any(a.route(k) != b.route(k) for k in keys[:300]):
            failures.append("routing_not_deterministic")

        shares = {w: 0 for w in ids}
        for k in keys:
            shares[a.route(k)] += 1
        if any(
            n / len(keys) < 1 / (4 * n_workers)
            or n / len(keys) > 3 / n_workers
            for n in shares.values()
        ):
            failures.append("routing_unbalanced")

        before = {k: a.route(k) for k in keys}
        joiner = n_workers
        a.add(joiner)
        moved = [k for k in keys if a.route(k) != before[k]]
        if any(a.route(k) != joiner for k in moved):
            failures.append("join_moved_keys_between_survivors")
        if len(moved) / len(keys) > 1 / n_workers + 0.08:
            failures.append("join_remapped_beyond_bound")
        a.remove(joiner)
        if any(a.route(k) != before[k] for k in keys):
            failures.append("leave_moved_unrelated_keys")

        t0 = time.perf_counter()
        engine = Colarm(
            salary_dataset(),
            primary_support=float(config.get("primary_support", 0.15)),
        )
        build_s = time.perf_counter() - t0
        queries = default_probe_queries(
            engine.index,
            n_queries=int(config["n_queries"]),
            seed=int(config["seed"]),
        )
        refs = [engine.query(q, use_cache=False).rules for q in queries]

        async def identity_run():
            with tempfile.TemporaryDirectory() as tmp:
                cluster = ClusterService(
                    engine,
                    tmp,
                    ClusterConfig(workers=2, serving=ServingConfig(workers=2)),
                )
                async with cluster:
                    n_identical = n_sticky = 0
                    for q, ref in zip(queries, refs):
                        res = await cluster.submit(q)
                        key = _focal_key_bytes(q, engine.index.cardinalities)
                        n_identical += res.rules == ref
                        n_sticky += res.worker == cluster.ring.route(key)
                    return n_identical, n_sticky

        n_identical, n_sticky = asyncio.run(identity_run())
        if n_identical != len(queries):
            failures.append("cluster_answers_diverge")
        if n_sticky != len(queries):
            failures.append("routing_not_sticky")
    finally:
        HashRing.route = original_route

    return {
        "dataset": "salary",
        "scenarios": len(queries),
        "build_s": round(build_s, 2),
        "corrupted": corrupt,
        "workers": n_workers,
        "replicas": replicas,
        "n_keys": len(keys),
        "join_remap_fraction": round(len(moved) / len(keys), 4),
        "identity": n_identical,
        "sticky": n_sticky,
        "passed": not failures,
        "failures": failures,
    }


_GATES = ("acc", "parallel", "cache", "serving", "maintenance", "cluster")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", type=Path, default=REPO_ROOT / "ci_gates.json")
    parser.add_argument(
        "--report",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "results" / "ci_gates.json",
    )
    parser.add_argument(
        "--override-weight",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="corrupt one fitted cost weight (gate self-test)",
    )
    parser.add_argument(
        "--only",
        choices=("all",) + _GATES,
        default="all",
        help="run a single gate instead of every configured one",
    )
    parser.add_argument(
        "--corrupt-admission",
        action="store_true",
        help="mis-wire the serving admission knobs (ceiling 0 -> inf, "
        "aging inf -> 0); the serving self-test must then FAIL",
    )
    parser.add_argument(
        "--corrupt-maintenance",
        action="store_true",
        help="sever the delta-store merge correction (main-only answers "
        "with live delta records); the maintenance self-test must then FAIL",
    )
    parser.add_argument(
        "--corrupt-routing",
        action="store_true",
        help="replace consistent hashing with modulo placement (a join "
        "reshuffles the key space); the cluster self-test must then FAIL",
    )
    args = parser.parse_args(argv)

    overrides: dict[str, float] = {}
    for spec in args.override_weight:
        name, _, value = spec.partition("=")
        overrides[name] = float(value)

    def wanted(gate: str) -> bool:
        return args.only in ("all", gate)

    config = json.loads(args.config.read_text())
    report = run_acc_gate(config["acc"], overrides) if wanted("acc") else None
    parallel_report = (
        run_parallel_selftest(config["parallel"])
        if "parallel" in config and wanted("parallel")
        else None
    )
    cache_report = (
        run_cache_selftest(config["cache"])
        if "cache" in config and wanted("cache")
        else None
    )
    serving_report = (
        run_serving_selftest(config["serving"], corrupt=args.corrupt_admission)
        if "serving" in config and wanted("serving")
        else None
    )
    maintenance_report = (
        run_maintenance_selftest(
            config["maintenance"], corrupt=args.corrupt_maintenance
        )
        if "maintenance" in config and wanted("maintenance")
        else None
    )
    cluster_report = (
        run_cluster_selftest(config["cluster"], corrupt=args.corrupt_routing)
        if "cluster" in config and wanted("cluster")
        else None
    )

    args.report.parent.mkdir(parents=True, exist_ok=True)
    full_report = dict(report) if report is not None else {}
    if parallel_report is not None:
        full_report["parallel_selftest"] = parallel_report
    if cache_report is not None:
        full_report["cache_selftest"] = cache_report
    if serving_report is not None:
        full_report["serving_selftest"] = serving_report
    if maintenance_report is not None:
        full_report["maintenance_selftest"] = maintenance_report
    if cluster_report is not None:
        full_report["cluster_selftest"] = cluster_report
    args.report.write_text(json.dumps(full_report, indent=2) + "\n")

    passed = True
    if report is not None:
        passed = report["passed"]
        print(
            f"acc-gate [{report['dataset']}, {report['scenarios']} scenarios, "
            f"build {report['build_s']}s + run {report['run_s']}s]"
        )
        for name, check in report["checks"].items():
            status = "ok  " if name not in report["failures"] else "FAIL"
            print(
                f"  {status} {name:<18} {check['value']:.3f} "
                f"{check['op']} {check['bound']}"
            )
        for plan, stats in sorted(report["residuals"].items()):
            print(
                f"  residual {plan:<9} n={stats['n']:.0f} "
                f"median log(est/meas)={stats['median_log_ratio']:+.2f} "
                f"mean|.|={stats['mean_abs_log_ratio']:.2f}"
            )
    if parallel_report is not None:
        passed = passed and parallel_report["passed"]
        status = "ok  " if parallel_report["passed"] else "FAIL"
        print(
            f"  {status} parallel-selftest  "
            f"inf-dispatch picks={parallel_report['parallel_picks_at_inf_dispatch']}"
            f" (want 0), zero-overhead picks="
            f"{parallel_report['parallel_picks_at_zero_overhead']} (want >0)"
        )
    if cache_report is not None:
        passed = passed and cache_report["passed"]
        status = "ok  " if cache_report["passed"] else "FAIL"
        print(
            f"  {status} cache-selftest     "
            f"inf-probe picks={cache_report['cache_picks_at_inf_probe']}"
            f" (want 0), zero-cost picks="
            f"{cache_report['cache_picks_at_zero_cost']}"
            f" (want {cache_report['scenarios']})"
        )
    if serving_report is not None:
        passed = passed and serving_report["passed"]
        status = "ok  " if serving_report["passed"] else "FAIL"
        print(
            f"  {status} serving-selftest   "
            f"shed at zero ceiling={serving_report['shed_at_zero_ceiling']}"
            f" (want {serving_report['scenarios']}), "
            f"FIFO at inf aging="
            f"{serving_report['fifo_order_at_inf_aging']}"
            + (" [admission corrupted]" if serving_report["corrupted"] else "")
        )
    if maintenance_report is not None:
        passed = passed and maintenance_report["passed"]
        status = "ok  " if maintenance_report["passed"] else "FAIL"
        covered = maintenance_report["identity_covered"]
        identical = covered - maintenance_report["identity_mismatches"]
        print(
            f"  {status} maintenance-selftest "
            f"stale hits={maintenance_report['stale_hits_after_append']}"
            f" (want 0), inf-probe recompacts="
            f"{maintenance_report['recompact_recommended_at_inf_probe']}"
            f" (want {maintenance_report['scenarios']}), "
            f"identity {identical}/{covered}"
            + (" [merge corrupted]" if maintenance_report["corrupted"] else "")
        )
    if cluster_report is not None:
        passed = passed and cluster_report["passed"]
        status = "ok  " if cluster_report["passed"] else "FAIL"
        print(
            f"  {status} cluster-selftest   "
            f"join remap={cluster_report['join_remap_fraction']:.3f}"
            f" (bound {1 / cluster_report['workers'] + 0.08:.3f}), "
            f"identity {cluster_report['identity']}/"
            f"{cluster_report['scenarios']}, sticky "
            f"{cluster_report['sticky']}/{cluster_report['scenarios']}"
            + (" [routing corrupted]" if cluster_report["corrupted"] else "")
        )
    if passed:
        print("ci-gates: PASS")
        return 0
    failures = list(report["failures"]) if report is not None else []
    if parallel_report is not None:
        failures += parallel_report["failures"]
    if cache_report is not None:
        failures += cache_report["failures"]
    if serving_report is not None:
        failures += serving_report["failures"]
    if maintenance_report is not None:
        failures += maintenance_report["failures"]
    if cluster_report is not None:
        failures += cluster_report["failures"]
    print(f"ci-gates: FAIL ({', '.join(failures)})")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
