#!/usr/bin/env python3
"""Retail scenario: region-local cross-sell rules hidden in the global view.

Uses the Quest-style retail dataset (region / daytype / customer segment /
product-category purchase levels) with planted region-local cross-sell
associations.  Shows the two future-work extensions of the paper at work:

* parameter suggestion — pick minsupp/minconf and promising focal subsets
  straight from the index (``repro.core.paramsuggest``);
* multi-query optimization — probe every region in one shared batch
  (``repro.core.multiquery``).

Run:  python examples/retail_localized.py
"""

from repro import Colarm, LocalizedQuery
from repro.core.multiquery import execute_batch
from repro.core.paramsuggest import suggest_minconf, suggest_minsupp, suggest_ranges
from repro.dataset import quest_like


def main() -> None:
    table = quest_like(n_records=1500, n_categories=6, seed=17)
    print(f"dataset: {table}")
    engine = Colarm(table, primary_support=0.05)
    print(f"MIP-index: {engine.n_mips} closed frequent itemsets")

    # Let the index propose thresholds and promising focal subsets.
    minsupp = round(suggest_minsupp(engine.index, qualify_fraction=0.10), 2)
    minconf = round(suggest_minconf(engine.index, target_fraction=0.25), 2)
    print(f"\nsuggested thresholds: minsupp={minsupp}, minconf={minconf}")
    print("most promising focal subsets (fresh local itemsets):")
    for suggestion in suggest_ranges(engine.index, minsupp=minsupp, top_k=4):
        print("  ", suggestion.describe(engine.schema))

    # Probe every region with one shared batch: the category attributes are
    # the items, region is the partitioning attribute.
    region = engine.schema.attribute_index("region")
    categories = frozenset(
        i for i, attr in enumerate(engine.schema.attributes)
        if attr.name.startswith("cat")
    )
    queries = [
        LocalizedQuery(
            range_selections={region: frozenset({value})},
            minsupp=minsupp,
            minconf=minconf,
            item_attributes=categories,
        )
        for value in range(engine.schema.attributes[region].cardinality)
    ]
    report = execute_batch(engine.index, queries)
    print(
        f"\nbatch of {report.n_queries} regional queries ran with "
        f"{report.n_searches} R-tree searches in {report.elapsed:.3f}s"
    )
    for item in report.items:
        label = engine.schema.attributes[region].values[
            next(iter(item.query.range_selections[region]))
        ]
        print(f"\nregion={label} ({item.dq_size} transactions): "
              f"{len(item.rules)} rules")
        for rule in item.rules[:4]:
            print("  ", rule.render(engine.schema))


if __name__ == "__main__":
    main()
