#!/usr/bin/env python3
"""Census pipeline: raw numeric data -> discretization -> localized mining.

The paper's model assumes quantitative attributes are discretized offline
(Srikant & Agrawal style).  This example runs that whole pipeline on a
synthetic census-like table with *numeric* age/income/hours columns:

1. discretize the numeric columns (equal-width and equal-frequency);
2. assemble the relational table and persist it as CSV;
3. build and save a MIP-index (the offline phase);
4. reload the index and answer localized queries about one region.

Run:  python examples/census_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Colarm
from repro.core.persistence import load_index, save_index
from repro.dataset import (
    Attribute,
    RelationalTable,
    Schema,
    discretize_numeric,
    load_csv,
    save_csv,
)


def make_raw_census(n: int = 1200, seed: int = 29):
    """Numeric columns with a planted regional pattern: in the 'coast'
    region, older respondents skew to high income."""
    rng = np.random.default_rng(seed)
    region = rng.choice(["coast", "inland", "north"], size=n, p=[0.3, 0.5, 0.2])
    age = rng.uniform(18, 78, size=n)
    income = rng.lognormal(mean=10.4, sigma=0.45, size=n)
    hours = np.clip(rng.normal(40, 10, size=n), 5, 80)
    coastal_senior = (region == "coast") & (age >= 48)
    income[coastal_senior] *= 2.4  # the local pattern to rediscover
    return region, age, income, hours


def main() -> None:
    region, age, income, hours = make_raw_census()

    age_attr, age_codes = discretize_numeric("age", age, 4, method="width")
    income_attr, income_codes = discretize_numeric(
        "income", income, 4, method="frequency"
    )
    hours_attr, hours_codes = discretize_numeric("hours", hours, 3,
                                                 method="width")
    region_attr = Attribute("region", ("coast", "inland", "north"))
    region_codes = np.asarray(
        [region_attr.values.index(r) for r in region], dtype=np.int32
    )
    schema = Schema((region_attr, age_attr, income_attr, hours_attr))
    table = RelationalTable(
        schema,
        np.column_stack([region_codes, age_codes, income_codes, hours_codes]),
    )
    print(f"discretized table: {table}")
    for attr in schema.attributes:
        print(f"  {attr.name}: {list(attr.values)}")

    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "census.csv"
        save_csv(table, csv_path)
        reloaded = load_csv(
            csv_path,
            value_order={a.name: a.values for a in schema.attributes},
        )
        print(f"\nCSV round-trip: {reloaded.n_records} records")

        engine = Colarm(reloaded, primary_support=0.03)
        engine.calibrate(n_probes=4, seed=2)
        index_path = Path(tmp) / "census.colarm.npz"
        save_index(engine.index, index_path, weights=engine.optimizer.weights)
        print(f"index saved: {engine.n_mips} closed itemsets "
              f"-> {index_path.name}")

        index, weights = load_index(index_path)
        engine = Colarm.from_index(index, weights=weights)
        outcome = engine.query(
            "REPORT LOCALIZED ASSOCIATION RULES FROM census "
            "WHERE RANGE region = (coast) "
            "AND ITEM ATTRIBUTES age, income "
            "HAVING minsupport = 0.12 AND minconfidence = 0.6;"
        )
        print(
            f"\ncoastal region ({outcome.dq_size} records), plan "
            f"{outcome.plan.value} ({outcome.chosen_by}):"
        )
        for rule in outcome.rules:
            print("  " + rule.render(engine.schema))


if __name__ == "__main__":
    main()
