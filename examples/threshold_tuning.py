#!/usr/bin/env python3
"""Threshold tuning: explore the (minsupp, minconf) parameter space.

Picking thresholds is the classic pain of rule mining — too loose floods
the analyst, too tight hides everything.  This example evaluates the whole
(minsupp, minconf) grid for one focal subset in a single pass
(`repro.analysis.paramspace`, the PARAS-style capability COLARM grew out
of), prints the rule-count landscape, and uses the knee cells to pick
thresholds that emit a digestible number of rules — then ranks that
output by a null-invariant measure.

Run:  python examples/threshold_tuning.py
"""

from repro import Colarm, LocalizedQuery
from repro.analysis import explore_parameter_space, format_table, rank_rules
from repro.dataset import quest_like


def main() -> None:
    # Primary support low enough that a quarter-sized region can be probed
    # down to minsupp 0.10 (the POQM coverage floor: 0.025 * 4 = 0.10).
    table = quest_like(n_records=1200, n_categories=6, seed=17)
    engine = Colarm(table, primary_support=0.025)
    print(f"dataset: {table}; MIP-index: {engine.n_mips} itemsets")

    region = engine.schema.attribute_index("region")
    categories = frozenset(
        i for i, a in enumerate(engine.schema.attributes)
        if a.name.startswith("cat")
    )
    base = LocalizedQuery(
        range_selections={region: frozenset({0})},   # the 'north' region
        minsupp=0.5, minconf=0.5,                    # ignored by the grid
        item_attributes=categories,
    )

    minsupps = (0.10, 0.15, 0.20, 0.30, 0.40)
    minconfs = (0.5, 0.6, 0.7, 0.8, 0.9)
    grid = explore_parameter_space(engine.index, base, minsupps, minconfs)

    rows = [
        [f"{ms:.2f}"] + [grid.count_at(ms, mc) for mc in minconfs]
        for ms in minsupps
    ]
    print("\nrule counts over the (minsupp, minconf) grid (north region):")
    print(format_table(
        ["minsupp \\ minconf"] + [f"{mc:.1f}" for mc in minconfs], rows
    ))

    budget = 12
    knees = grid.knee_cells(max_rules=budget)
    print(f"\nloosest cells emitting <= {budget} rules:")
    for minsupp, minconf, count in knees:
        print(f"  minsupp={minsupp:.2f}, minconf={minconf:.1f}: {count} rules")

    minsupp, minconf, _ = knees[0]
    outcome = engine.query(
        LocalizedQuery(base.range_selections, minsupp, minconf,
                       item_attributes=categories)
    )
    dq = engine.index.table.tids_matching(base.range_selections)
    print(f"\nchosen thresholds -> {outcome.n_rules} rules, "
          f"ranked by Kulczynski:")
    for rule, score in rank_rules(engine.index, outcome.rules, dq,
                                  measure="kulczynski", top_k=8):
        print(f"  {score:5.2f}  {rule.render(engine.schema)}")


if __name__ == "__main__":
    main()
