#!/usr/bin/env python3
"""Simpson hunt: rules that flip between the global and a local context.

Section 5.3 of the paper reports strong evidence of Simpson's paradox in
localized mining: itemsets and rules prominent inside a focal subset that
are hidden — or outright contradicted — globally.  This example scans the
mushroom-like benchmark dataset for the strongest such flips.

Run:  python examples/simpson_hunt.py
"""

from repro import Colarm, LocalizedQuery
from repro.analysis import compare_itemsets, find_rule_flips
from repro.dataset import mushroom_like


def main() -> None:
    table = mushroom_like(n_records=1200, seed=11)
    engine = Colarm(table, primary_support=0.08)
    print(f"dataset: {table}; MIP-index: {engine.n_mips} itemsets\n")

    region = 0  # the generator's partitioning attribute
    # Rules over everything *except* the region attribute — otherwise the
    # strongest "flips" are tautologies like {...} => {region=r0} inside r0.
    items = frozenset(range(1, engine.schema.n_attributes))
    for value in range(engine.schema.attributes[region].cardinality):
        query = LocalizedQuery(
            range_selections={region: frozenset({value})},
            minsupp=0.35,
            minconf=0.85,
            item_attributes=items,
        )
        label = engine.schema.attributes[region].values[value]
        split = compare_itemsets(engine.index, query)
        print(
            f"region={label}: {split.n_local} locally frequent closed itemsets "
            f"({split.n_fresh} fresh / {split.n_repeated} already global)"
        )
        flips = find_rule_flips(engine.index, query, margin=0.10)
        for flip in flips[:3]:
            print(
                f"    {flip.rule.render(engine.schema)}  "
                f"[global conf {flip.global_confidence:.2f} -> "
                f"local {flip.local_confidence:.2f}, {flip.direction}]"
            )
        print()


if __name__ == "__main__":
    main()
