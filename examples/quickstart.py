#!/usr/bin/env python3
"""Quickstart: the paper's Table 1 salary example, end to end.

Reproduces the motivating example of Section 1.1: the global rule
``R_G = (Age=20-30 -> Salary=90K-120K)`` (45% support, 83% confidence)
does not hold for female employees in Seattle, where the localized rule
``R_L = (Age=30-40 -> Salary=90K-120K)`` (75% support, 100% confidence)
emerges instead — Simpson's paradox in rule form.

Run:  python examples/quickstart.py
"""

from repro import Colarm, salary_dataset

QUERY = """
REPORT LOCALIZED ASSOCIATION RULES
FROM salary
WHERE RANGE Location = (Seattle) AND Gender = (F)
AND ITEM ATTRIBUTES Age, Salary
HAVING minsupport = 0.5 AND minconfidence = 0.8;
"""


def main() -> None:
    table = salary_dataset()
    print(f"dataset: {table}")

    # Offline preprocessing: build the MIP-index (expand=True additionally
    # enumerates all locally frequent sub-itemsets, so minimal rules like
    # R_L appear verbatim rather than inside their closures).
    engine = Colarm(table, primary_support=0.15, expand=True)
    print(f"MIP-index: {engine.n_mips} closed frequent itemsets\n")

    # The analyst's starting point: global rules over the whole dataset.
    print("Global rules (minsupp=0.4, minconf=0.8):")
    for rule in engine.global_rules(minsupp=0.4, minconf=0.8):
        if len(rule.items) == 2:
            print("  ", rule.render(engine.schema))

    # The localized request: female employees in Seattle.
    print("\nLocalized query:")
    print(QUERY.strip())
    outcome = engine.query(QUERY)
    print(
        f"\nfocal subset: {outcome.dq_size} records; plan chosen by "
        f"{outcome.chosen_by}: {outcome.plan.value}"
    )
    print("Localized rules:")
    for rule in outcome.rules:
        print("  ", rule.render(engine.schema))

    print("\nOptimizer ranking:")
    print(engine.choose_plan(QUERY).explain())


if __name__ == "__main__":
    main()
