#!/usr/bin/env python3
"""Plan explorer: how the six strategies trade off as the query changes.

A miniature of Figures 9-11: executes every plan for focal subsets of
varying size over the chess-like benchmark dataset, prints the measured
times alongside the optimizer's estimates and choice, and flags whether
the choice was right — the cost-based optimization story of the paper in
one screen.

Run:  python examples/plan_explorer.py
"""

import numpy as np

from repro import Colarm, PlanKind
from repro.analysis import format_table
from repro.dataset import chess_like
from repro.workloads import random_focal_query


def main() -> None:
    table = chess_like(n_records=800, seed=7)
    engine = Colarm(table, primary_support=0.10)
    print(f"dataset: {table}; MIP-index: {engine.n_mips} itemsets")
    print("calibrating cost model ...")
    report = engine.calibrate(n_probes=6, seed=2)
    print(f"  {report.n_runs} probe runs, RMS residual {report.residual * 1000:.1f} ms\n")

    rng = np.random.default_rng(11)
    rows = []
    for fraction in (0.5, 0.2, 0.1, 0.02):
        workload = random_focal_query(
            table, fraction, minsupp=0.4, minconf=0.85, rng=rng
        )
        results = engine.compare_plans(workload.query)
        choice = engine.choose_plan(workload.query)
        best = min(results, key=lambda k: results[k].elapsed)
        for kind in PlanKind:
            rows.append(
                [
                    f"{fraction:.0%}",
                    workload.dq_size,
                    kind.value,
                    f"{results[kind].elapsed * 1000:.1f}",
                    f"{choice.estimates[kind] * 1000:.1f}",
                    results[kind].n_rules,
                    "chosen" if kind is choice.kind else "",
                    "fastest" if kind is best else "",
                ]
            )
        rows.append(["-"] * 8)

    print(
        format_table(
            ["|D^Q|/|D|", "|D^Q|", "plan", "measured ms", "estimated ms",
             "rules", "optimizer", "actual"],
            rows,
            title="Six plans across focal-subset sizes (minsupp=0.40, minconf=0.85)",
        )
    )


if __name__ == "__main__":
    main()
